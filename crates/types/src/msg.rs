//! Protocol messages.
//!
//! Table III of the paper defines the Cx vocabulary (VOTE, YES/NO,
//! COMMIT-REQ/ABORT-REQ, ACK, L-COM, ALL-NO); the baseline protocols add the
//! 2PC operation request, the SE "CLEAR" withdrawal, and the CE migration
//! round-trips. Lazy commitments batch many operation ids into a single
//! message ("lazy commitments can send batched messages", §IV-C1), so the
//! server-to-server payloads carry `Vec<OpId>`.

use crate::ids::{ObjectId, OpId, ServerId};
use crate::op::OpOutcome;
use crate::subop::{OpPlan, Role, SubOp};
use serde::{Deserialize, Serialize};

/// Execution result of a sub-operation: the "YES"/"NO" of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    Yes,
    No,
}

impl Verdict {
    pub fn from_ok(ok: bool) -> Self {
        if ok {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }
    pub fn is_yes(&self) -> bool {
        matches!(self, Verdict::Yes)
    }
}

/// Conflict hint attached to every sub-op response (§III-C).
///
/// `[null]` is the empty hint; `[SOP']` lists the pending operations whose
/// commitment had to precede this execution. A process recognizes a
/// cross-server operation as complete only when the responses from both
/// affected servers carry the same hint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Hint(pub Vec<OpId>);

impl Hint {
    pub fn null() -> Self {
        Hint(Vec::new())
    }
    pub fn of(op: OpId) -> Self {
        Hint(vec![op])
    }
    pub fn is_null(&self) -> bool {
        self.0.is_empty()
    }
}

/// Message kinds for statistics (Table IV counts messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MsgKind {
    SubOpReq,
    SubOpResp,
    Vote,
    VoteResult,
    CommitReq,
    AbortReq,
    Ack,
    LCom,
    AllNo,
    /// Resolution of a client-requested immediate commitment that ended in
    /// a commit (our generalization of ALL-NO for the hint-mismatch
    /// fallback; see DESIGN.md §5.8).
    Committed,
    /// Participant-to-coordinator request to launch an immediate
    /// commitment when the participant detects the conflict first
    /// (DESIGN.md §5.6).
    CommitmentReq,
    /// Participant asking the coordinator for an operation outcome during
    /// recovery.
    QueryOutcome,
    /// 2PC/CE whole-operation request from client to coordinator.
    OpReq,
    OpResp,
    /// SE withdrawal of an executed sub-op after a later failure.
    Clear,
    ClearResp,
    Migrate,
    MigrateResp,
    MigrateBack,
    MigrateBackAck,
}

impl MsgKind {
    /// Every kind, in declaration (= discriminant) order, so per-kind
    /// counters can live in a flat `[u64; MsgKind::COUNT]` indexed by
    /// `kind as usize` on the hot path and fold into ordered maps later.
    pub const ALL: [MsgKind; 20] = [
        MsgKind::SubOpReq,
        MsgKind::SubOpResp,
        MsgKind::Vote,
        MsgKind::VoteResult,
        MsgKind::CommitReq,
        MsgKind::AbortReq,
        MsgKind::Ack,
        MsgKind::LCom,
        MsgKind::AllNo,
        MsgKind::Committed,
        MsgKind::CommitmentReq,
        MsgKind::QueryOutcome,
        MsgKind::OpReq,
        MsgKind::OpResp,
        MsgKind::Clear,
        MsgKind::ClearResp,
        MsgKind::Migrate,
        MsgKind::MigrateResp,
        MsgKind::MigrateBack,
        MsgKind::MigrateBackAck,
    ];
    pub const COUNT: usize = Self::ALL.len();
}

/// A protocol message payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    // ---- client <-> server (execution phase) ----
    /// Process assigns a sub-op to a server (Cx step 1; also carries SE
    /// executions). `peer` names the other affected server so that the
    /// coordinator can later run the commitment and the participant can
    /// route conflict notifications.
    SubOpReq {
        op_id: OpId,
        subop: SubOp,
        role: Role,
        peer: Option<ServerId>,
        /// For local (colocated) mutations the second half rides along.
        colocated: Option<SubOp>,
    },
    /// Server's YES/NO response with a conflict hint (Cx step 2).
    SubOpResp {
        op_id: OpId,
        verdict: Verdict,
        hint: Hint,
    },
    /// Client asks the coordinator to launch an immediate commitment
    /// (Table III, "L-COM").
    LCom {
        op_id: OpId,
    },
    /// Coordinator tells the process all successful executions have been
    /// aborted (Table III, "ALL-NO").
    AllNo {
        op_id: OpId,
    },
    /// Coordinator tells the process its immediate commitment committed.
    Committed {
        op_id: OpId,
    },

    // ---- server <-> server (commitment phase) ----
    /// Coordinator queries sub-op results; batched over many operations
    /// for lazy commitments (Cx step 3). When issued during conflict
    /// handling it also "implies that the coordinator tends to instruct
    /// the participant to obey its execution order" (§III-C step 3):
    /// `order_after` lists the operations queued *behind* the voted ones
    /// at the coordinator. The participant may invalidate one of its own
    /// executions only if it appears there — those operations demonstrably
    /// have not completed at their client, so invalidation is safe.
    Vote {
        ops: Vec<OpId>,
        order_after: Vec<OpId>,
    },
    /// Participant's per-operation YES/NO votes (Cx step 4).
    VoteResult {
        results: Vec<(OpId, Verdict)>,
    },
    /// Commit/abort decisions (Cx step 5); one batched message may carry
    /// both commits and aborts.
    CommitDecision {
        commits: Vec<OpId>,
        aborts: Vec<OpId>,
    },
    /// Participant acknowledges commitment completion (Cx step 6).
    Ack {
        ops: Vec<OpId>,
    },
    /// Participant-detected conflict (or log pressure): ask the
    /// coordinator to launch an immediate commitment for `pending`.
    /// `sweep` asks the coordinator to flush its whole lazy queue along
    /// (log pressure); a plain conflict commits only the pending op, as in
    /// Figure 3.
    CommitmentReq {
        pending: OpId,
        sweep: bool,
    },
    /// Recovery: participant asks the coordinator for outcomes of
    /// half-completed operations.
    QueryOutcome {
        ops: Vec<OpId>,
    },

    // ---- 2PC / CE: client sends the whole operation to the coordinator ----
    OpReq {
        op_id: OpId,
        plan: OpPlan,
    },
    OpResp {
        op_id: OpId,
        outcome: OpOutcome,
    },
    /// 2PC vote request carrying the sub-op the participant must perform.
    VoteExec {
        op_id: OpId,
        subop: SubOp,
    },

    // ---- SE baseline ----
    /// Withdraw a previously executed sub-op ("CLEAR", §II-B).
    Clear {
        op_id: OpId,
        subop: SubOp,
    },
    ClearResp {
        op_id: OpId,
    },

    // ---- CE baseline (Ursa Minor style migration) ----
    /// Coordinator pulls the participant-side objects.
    Migrate {
        op_id: OpId,
        objs: Vec<ObjectId>,
    },
    /// Participant ships the objects (size models the object data).
    MigrateResp {
        op_id: OpId,
        objs: Vec<ObjectId>,
    },
    /// Coordinator ships modified objects back. `install` is the logical
    /// content of the shipped images: the sub-operation whose effect the
    /// home server re-installs (None when the central execution failed and
    /// the objects return unchanged).
    MigrateBack {
        op_id: OpId,
        objs: Vec<ObjectId>,
        install: Option<SubOp>,
    },
    /// Participant confirms re-installation of the migrated objects.
    MigrateBackAck {
        op_id: OpId,
        verdict: Verdict,
    },
}

impl Payload {
    pub fn kind(&self) -> MsgKind {
        match self {
            Payload::SubOpReq { .. } => MsgKind::SubOpReq,
            Payload::SubOpResp { .. } => MsgKind::SubOpResp,
            Payload::LCom { .. } => MsgKind::LCom,
            Payload::AllNo { .. } => MsgKind::AllNo,
            Payload::Committed { .. } => MsgKind::Committed,
            Payload::Vote { .. } => MsgKind::Vote,
            Payload::VoteResult { .. } => MsgKind::VoteResult,
            Payload::CommitDecision { aborts, .. } => {
                if aborts.is_empty() {
                    MsgKind::CommitReq
                } else {
                    MsgKind::AbortReq
                }
            }
            Payload::Ack { .. } => MsgKind::Ack,
            Payload::CommitmentReq { .. } => MsgKind::CommitmentReq,
            Payload::QueryOutcome { .. } => MsgKind::QueryOutcome,
            Payload::OpReq { .. } => MsgKind::OpReq,
            Payload::OpResp { .. } => MsgKind::OpResp,
            Payload::VoteExec { .. } => MsgKind::Vote,
            Payload::Clear { .. } => MsgKind::Clear,
            Payload::ClearResp { .. } => MsgKind::ClearResp,
            Payload::Migrate { .. } => MsgKind::Migrate,
            Payload::MigrateResp { .. } => MsgKind::MigrateResp,
            Payload::MigrateBack { .. } => MsgKind::MigrateBack,
            Payload::MigrateBackAck { .. } => MsgKind::MigrateBackAck,
        }
    }

    /// Stable wire tag for the TCP codec (`cx-net`): declaration order of
    /// the `Payload` variants, 0..=19. Unlike [`Payload::kind`], this is a
    /// bijection — `CommitDecision` and `VoteExec` keep their own tags so
    /// the decoder can reconstruct the exact variant.
    pub fn wire_tag(&self) -> u8 {
        match self {
            Payload::SubOpReq { .. } => 0,
            Payload::SubOpResp { .. } => 1,
            Payload::LCom { .. } => 2,
            Payload::AllNo { .. } => 3,
            Payload::Committed { .. } => 4,
            Payload::Vote { .. } => 5,
            Payload::VoteResult { .. } => 6,
            Payload::CommitDecision { .. } => 7,
            Payload::Ack { .. } => 8,
            Payload::CommitmentReq { .. } => 9,
            Payload::QueryOutcome { .. } => 10,
            Payload::OpReq { .. } => 11,
            Payload::OpResp { .. } => 12,
            Payload::VoteExec { .. } => 13,
            Payload::Clear { .. } => 14,
            Payload::ClearResp { .. } => 15,
            Payload::Migrate { .. } => 16,
            Payload::MigrateResp { .. } => 17,
            Payload::MigrateBack { .. } => 18,
            Payload::MigrateBackAck { .. } => 19,
        }
    }

    /// Number of distinct wire tags (= number of `Payload` variants).
    pub const WIRE_TAG_COUNT: u8 = 20;

    /// Approximate wire size in bytes (header + payload), used by the
    /// network model for transfer-time accounting.
    pub fn size_bytes(&self) -> u32 {
        const HDR: u32 = 64; // RPC header: op id, type, checksums
        const PER_OP: u32 = 24;
        match self {
            Payload::SubOpReq { colocated, .. } => {
                HDR + 72 + if colocated.is_some() { 72 } else { 0 }
            }
            Payload::SubOpResp { hint, .. } => HDR + 8 + hint.0.len() as u32 * PER_OP,
            Payload::LCom { .. }
            | Payload::AllNo { .. }
            | Payload::Committed { .. }
            | Payload::CommitmentReq { .. }
            | Payload::ClearResp { .. }
            | Payload::MigrateBackAck { .. } => HDR,
            Payload::Vote { ops, order_after } => {
                HDR + (ops.len() + order_after.len()) as u32 * PER_OP
            }
            Payload::QueryOutcome { ops } | Payload::Ack { ops } => HDR + ops.len() as u32 * PER_OP,
            Payload::VoteResult { results } => HDR + results.len() as u32 * (PER_OP + 1),
            Payload::CommitDecision { commits, aborts } => {
                HDR + (commits.len() + aborts.len()) as u32 * PER_OP
            }
            Payload::OpReq { .. } => HDR + 128,
            Payload::OpResp { .. } => HDR + 8,
            Payload::VoteExec { .. } => HDR + 72,
            Payload::Clear { .. } => HDR + 72,
            // migration ships whole metadata objects (~256 B each)
            Payload::Migrate { objs, .. } => HDR + objs.len() as u32 * 16,
            Payload::MigrateResp { objs, .. } | Payload::MigrateBack { objs, .. } => {
                HDR + objs.len() as u32 * 256
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;

    fn oid(seq: u64) -> OpId {
        OpId::new(ProcId::new(0, 0), seq)
    }

    #[test]
    fn hint_equality_drives_completion() {
        assert_eq!(Hint::null(), Hint::null());
        assert_eq!(Hint::of(oid(1)), Hint::of(oid(1)));
        assert_ne!(Hint::null(), Hint::of(oid(1)));
        assert!(Hint::null().is_null());
        assert!(!Hint::of(oid(1)).is_null());
    }

    #[test]
    fn commit_decision_kind_depends_on_aborts() {
        let commit = Payload::CommitDecision {
            commits: vec![oid(1)],
            aborts: vec![],
        };
        let abort = Payload::CommitDecision {
            commits: vec![],
            aborts: vec![oid(1)],
        };
        assert_eq!(commit.kind(), MsgKind::CommitReq);
        assert_eq!(abort.kind(), MsgKind::AbortReq);
    }

    #[test]
    fn batched_messages_grow_with_op_count() {
        let small = Payload::Vote {
            ops: vec![oid(1)],
            order_after: vec![],
        };
        let big = Payload::Vote {
            ops: (0..100).map(oid).collect(),
            order_after: vec![],
        };
        assert!(big.size_bytes() > small.size_bytes());
        // ...but far less than 100 separate messages
        assert!(big.size_bytes() < 100 * small.size_bytes());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::from_ok(true).is_yes());
        assert!(!Verdict::from_ok(false).is_yes());
    }

    #[test]
    fn migration_responses_carry_object_data() {
        let objs = vec![ObjectId::Inode(crate::ids::InodeNo(1))];
        let req = Payload::Migrate {
            op_id: oid(1),
            objs: objs.clone(),
        };
        let resp = Payload::MigrateResp {
            op_id: oid(1),
            objs,
        };
        assert!(resp.size_bytes() > req.size_bytes());
    }

    #[test]
    fn all_payloads_have_nonzero_size() {
        let p = Payload::LCom { op_id: oid(1) };
        assert!(p.size_bytes() >= 64);
    }

    #[test]
    fn wire_tags_are_dense_and_distinct() {
        // One representative per variant, in declaration order.
        let subop = SubOp::TouchInode {
            ino: crate::ids::InodeNo(1),
        };
        let all: Vec<Payload> = vec![
            Payload::SubOpReq {
                op_id: oid(1),
                subop,
                role: Role::Coordinator,
                peer: None,
                colocated: None,
            },
            Payload::SubOpResp {
                op_id: oid(1),
                verdict: Verdict::Yes,
                hint: Hint::null(),
            },
            Payload::LCom { op_id: oid(1) },
            Payload::AllNo { op_id: oid(1) },
            Payload::Committed { op_id: oid(1) },
            Payload::Vote {
                ops: vec![],
                order_after: vec![],
            },
            Payload::VoteResult { results: vec![] },
            Payload::CommitDecision {
                commits: vec![],
                aborts: vec![],
            },
            Payload::Ack { ops: vec![] },
            Payload::CommitmentReq {
                pending: oid(1),
                sweep: false,
            },
            Payload::QueryOutcome { ops: vec![] },
            Payload::OpReq {
                op_id: oid(1),
                plan: OpPlan {
                    op: crate::op::FsOp::Stat {
                        ino: crate::ids::InodeNo(1),
                    },
                    coordinator: ServerId(0),
                    coord_subop: subop,
                    participant: None,
                    colocated: None,
                },
            },
            Payload::OpResp {
                op_id: oid(1),
                outcome: crate::op::OpOutcome::Applied,
            },
            Payload::VoteExec {
                op_id: oid(1),
                subop,
            },
            Payload::Clear {
                op_id: oid(1),
                subop,
            },
            Payload::ClearResp { op_id: oid(1) },
            Payload::Migrate {
                op_id: oid(1),
                objs: vec![],
            },
            Payload::MigrateResp {
                op_id: oid(1),
                objs: vec![],
            },
            Payload::MigrateBack {
                op_id: oid(1),
                objs: vec![],
                install: None,
            },
            Payload::MigrateBackAck {
                op_id: oid(1),
                verdict: Verdict::Yes,
            },
        ];
        assert_eq!(all.len(), Payload::WIRE_TAG_COUNT as usize);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.wire_tag() as usize, i, "{p:?} has wrong wire tag");
        }
    }

    #[test]
    fn msg_kind_all_is_in_discriminant_order() {
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{k:?} out of order in MsgKind::ALL");
        }
    }
}
