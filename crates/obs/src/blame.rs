//! Blame attribution: decompose every completed op's end-to-end latency
//! into named segments and aggregate them into mergeable tables.
//!
//! The segment taxonomy mirrors the paper's decomposition of a
//! cross-server operation:
//!
//! - the **client-visible window** (`Issued → Replied`) splits along the
//!   critical path ([`crate::path`]) into issue queueing, per-hop request
//!   wire, coordinator dispatch, participant execution, on-path commitment
//!   (2PC's vote round, CE's migration — work the client *waits* for),
//!   reply wire, and reply delivery;
//! - the **off-path commitment suffix** (`Replied → Completed`, Cx only)
//!   splits at the phase stamps into vote launch, vote round, decision
//!   round, and completion.
//!
//! Per op, the invariant `sum(client segments) == client_visible_ns` and
//! `sum(suffix segments) == commitment_ns` holds exactly — the doctor's
//! version of `OpSpan::check_accounting`, preserved under shard-merged
//! clock-corrected stamps by the clamping in both decompositions. That is
//! the paper's figure-5 claim made machine-checkable: Cx accrues its
//! commitment time in the off-path suffix, 2PC accrues it in
//! `commit-onpath` inside the client window.

use crate::flow::{FlowNode, MsgEdge};
use crate::hist::{fmt_ns_f, HistSummary, LogHistogram};
use crate::path::{critical_path, edge_class, EdgeClass};
use crate::span::{OpSpan, Phase};
use cx_types::OpId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A named latency segment. The first seven live inside the client-visible
/// window; the last four form the off-path commitment suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Seg {
    /// Client-side queueing: `Issued` → the first request leaves.
    IssueQueue,
    /// Server-side gap before forwarding a data request (coordinator
    /// dispatch).
    Dispatch,
    /// Data-request flight on the critical path.
    ReqWire,
    /// Server-side gap before sending a data response (participant
    /// execution).
    Execute,
    /// Commitment/coordination work the client waited for: gaps before and
    /// flights of vote/decision/migration messages inside the
    /// client-visible window (2PC, CE — near zero for Cx and SE).
    CommitOnPath,
    /// Data-response flight on the critical path.
    ReplyWire,
    /// Client-side time between the final response arriving and the
    /// `Replied` stamp.
    ReplyDeliver,
    /// `Replied` → `VoteSent`: batching delay before the lazy commitment
    /// launches (off-path, Cx).
    VoteLaunch,
    /// `VoteSent` → `DecisionSent`: the vote round.
    VoteRound,
    /// `DecisionSent` → `Acked`: the decision round.
    DecisionRound,
    /// `Acked` → `Completed`: the completion record.
    Complete,
}

impl Seg {
    pub const COUNT: usize = 11;
    pub const ALL: [Seg; Seg::COUNT] = [
        Seg::IssueQueue,
        Seg::Dispatch,
        Seg::ReqWire,
        Seg::Execute,
        Seg::CommitOnPath,
        Seg::ReplyWire,
        Seg::ReplyDeliver,
        Seg::VoteLaunch,
        Seg::VoteRound,
        Seg::DecisionRound,
        Seg::Complete,
    ];
    /// Segments inside the client-visible window, in path order.
    pub const CLIENT: [Seg; 7] = [
        Seg::IssueQueue,
        Seg::Dispatch,
        Seg::ReqWire,
        Seg::Execute,
        Seg::CommitOnPath,
        Seg::ReplyWire,
        Seg::ReplyDeliver,
    ];
    /// Segments of the off-path commitment suffix, in order.
    pub const SUFFIX: [Seg; 4] = [
        Seg::VoteLaunch,
        Seg::VoteRound,
        Seg::DecisionRound,
        Seg::Complete,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn is_client_visible(self) -> bool {
        (self as usize) < 7
    }

    pub fn name(self) -> &'static str {
        match self {
            Seg::IssueQueue => "issue-queue",
            Seg::Dispatch => "dispatch",
            Seg::ReqWire => "req-wire",
            Seg::Execute => "execute",
            Seg::CommitOnPath => "commit-onpath",
            Seg::ReplyWire => "reply-wire",
            Seg::ReplyDeliver => "reply-deliver",
            Seg::VoteLaunch => "vote-launch",
            Seg::VoteRound => "vote-round",
            Seg::DecisionRound => "decision-round",
            Seg::Complete => "complete",
        }
    }
}

/// One row of an exemplar's annotated waterfall.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainRow {
    /// Offset from `Issued`.
    pub t_rel_ns: u64,
    pub dur_ns: u64,
    pub seg: Seg,
    /// Human annotation: what happened, where.
    pub label: String,
}

/// The per-op decomposition. `segs` indexes by [`Seg::index`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpBlame {
    pub op: OpId,
    pub class: String,
    pub cross: bool,
    /// `Issued → Replied`.
    pub client_ns: u64,
    /// `Replied → Completed` (0 when the op has no off-path suffix).
    pub commit_ns: u64,
    pub segs: [u64; Seg::COUNT],
    /// True when the op had no usable causal chain and the coarse
    /// phase-window decomposition was used instead.
    pub fallback: bool,
    /// The annotated waterfall, in time order.
    pub chain: Vec<ChainRow>,
}

impl OpBlame {
    /// The doctor's accounting invariant: client segments sum exactly to
    /// the client-visible latency, suffix segments to the commitment
    /// latency, and every segment is trivially non-negative (`u64`).
    pub fn check(&self) -> Result<(), String> {
        let client: u64 = Seg::CLIENT.iter().map(|s| self.segs[s.index()]).sum();
        if client != self.client_ns {
            return Err(format!(
                "{}: client segments sum to {client} but client window is {}",
                self.op, self.client_ns
            ));
        }
        let suffix: u64 = Seg::SUFFIX.iter().map(|s| self.segs[s.index()]).sum();
        if suffix != self.commit_ns {
            return Err(format!(
                "{}: suffix segments sum to {suffix} but commitment window is {}",
                self.op, self.commit_ns
            ));
        }
        Ok(())
    }
}

/// Decompose one completed span. Returns `None` for ops without a
/// `Replied` stamp (still in flight — nothing to blame).
pub fn blame_span(span: &OpSpan, edges: &[&MsgEdge]) -> Option<OpBlame> {
    let t0 = span.at(Phase::Issued)?;
    let t3 = span.at(Phase::Replied)?;
    let t3 = t3.max(t0);
    let client_ns = t3 - t0;
    let mut segs = [0u64; Seg::COUNT];
    let mut chain: Vec<ChainRow> = Vec::new();
    let mut fallback = false;

    match critical_path(span, edges) {
        Some(cp) => {
            for h in &cp.hops {
                // The on-node gap before the send: at a client it is issue
                // queueing; at a server it takes the class of the message
                // the node was preparing.
                let gap_seg = match (h.from, edge_class(h.kind)) {
                    (FlowNode::Client(_), _) => Seg::IssueQueue,
                    (FlowNode::Server(_), EdgeClass::Req) => Seg::Dispatch,
                    (FlowNode::Server(_), EdgeClass::Resp) => Seg::Execute,
                    (FlowNode::Server(_), EdgeClass::Commit) => Seg::CommitOnPath,
                };
                let wire_seg = match edge_class(h.kind) {
                    EdgeClass::Req => Seg::ReqWire,
                    EdgeClass::Resp => Seg::ReplyWire,
                    EdgeClass::Commit => Seg::CommitOnPath,
                };
                segs[gap_seg.index()] += h.gap_ns;
                segs[wire_seg.index()] += h.wire_ns;
                if h.gap_ns > 0 {
                    chain.push(ChainRow {
                        t_rel_ns: h.sent_ns.saturating_sub(t0).saturating_sub(h.gap_ns),
                        dur_ns: h.gap_ns,
                        seg: gap_seg,
                        label: format!("{} @ {}", gap_seg.name(), h.from),
                    });
                }
                chain.push(ChainRow {
                    t_rel_ns: h.sent_ns - t0,
                    dur_ns: h.wire_ns,
                    seg: wire_seg,
                    label: format!("{} {} → {}", h.kind.name(), h.from, h.to),
                });
            }
            if cp.tail_ns > 0 {
                segs[Seg::ReplyDeliver.index()] += cp.tail_ns;
                chain.push(ChainRow {
                    t_rel_ns: client_ns - cp.tail_ns,
                    dur_ns: cp.tail_ns,
                    seg: Seg::ReplyDeliver,
                    label: "reply-deliver @ client".into(),
                });
            }
        }
        None => {
            // Phase-window fallback: consecutive reached prefix stamps,
            // clamped monotone; each window takes the segment named by its
            // endpoint.
            fallback = true;
            let mut prev = t0;
            for (ph, seg) in [
                (Phase::Dispatched, Seg::IssueQueue),
                (Phase::Executed, Seg::Execute),
                (Phase::Replied, Seg::ReplyDeliver),
            ] {
                let Some(raw) = span.at(ph) else { continue };
                let at = raw.clamp(prev, t3);
                if at > prev {
                    segs[seg.index()] += at - prev;
                    chain.push(ChainRow {
                        t_rel_ns: prev - t0,
                        dur_ns: at - prev,
                        seg,
                        label: format!("{} (phase window)", seg.name()),
                    });
                }
                prev = at;
            }
            // A span can lack Executed/Dispatched stamps; whatever remains
            // before Replied is delivery time.
            if t3 > prev {
                segs[Seg::ReplyDeliver.index()] += t3 - prev;
                prev = t3;
            }
            debug_assert_eq!(prev, t3);
        }
    }

    // Off-path commitment suffix, from the phase stamps. Stamps below the
    // Replied boundary (2PC/CE commit *before* replying) are on-path and
    // already accounted above; clamping skips them here.
    let completed = span.at(Phase::Completed).unwrap_or(t3).max(t3);
    let commit_ns = completed - t3;
    if commit_ns > 0 {
        let mut prev = t3;
        for (ph, seg) in [
            (Phase::VoteSent, Seg::VoteLaunch),
            (Phase::DecisionSent, Seg::VoteRound),
            (Phase::Acked, Seg::DecisionRound),
        ] {
            let Some(raw) = span.at(ph) else { continue };
            let at = raw.clamp(prev, completed);
            if at > prev {
                segs[seg.index()] += at - prev;
                chain.push(ChainRow {
                    t_rel_ns: prev - t0,
                    dur_ns: at - prev,
                    seg,
                    label: format!("{} (off-path)", seg.name()),
                });
            }
            prev = at;
        }
        if completed > prev {
            segs[Seg::Complete.index()] += completed - prev;
            chain.push(ChainRow {
                t_rel_ns: prev - t0,
                dur_ns: completed - prev,
                seg: Seg::Complete,
                label: "complete (off-path)".into(),
            });
        }
    }

    Some(OpBlame {
        op: span.op,
        class: span.class.name().to_string(),
        cross: span.cross,
        client_ns,
        commit_ns,
        segs,
        fallback,
        chain,
    })
}

/// One segment's histogram row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegRow {
    pub seg: Seg,
    pub hist: LogHistogram,
}

/// Per-op-class segment rows (sparse: only classes that appeared).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassBlame {
    pub class: String,
    pub client_total: LogHistogram,
    pub segs: Vec<SegRow>,
}

/// Wire time of one critical-path hop family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopRow {
    pub from: FlowNode,
    pub to: FlowNode,
    pub seg: Seg,
    pub hist: LogHistogram,
}

/// On-node time of one (node, segment) family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeRow {
    pub node: FlowNode,
    pub seg: Seg,
    pub hist: LogHistogram,
}

/// A tail exemplar: one of the K slowest ops, with its full decomposition
/// and annotated waterfall. Self-contained (pre-rendered labels) so the
/// table stays meaningful after spans and edges are gone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exemplar {
    pub op: String,
    pub class: String,
    pub cross: bool,
    pub client_ns: u64,
    pub commit_ns: u64,
    pub segs: Vec<SegRow>,
    pub chain: Vec<ChainRow>,
}

/// How many tail exemplars a table keeps.
pub const EXEMPLARS: usize = 5;

/// The aggregated blame table of one run (or one merged set of runs).
/// Every histogram merges element-wise, so tables compose across
/// partitions and processes exactly like the underlying histograms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlameTable {
    pub protocol: String,
    /// Ops decomposed into this table.
    pub ops: u64,
    /// Ops that used the coarse phase-window fallback (no causal chain).
    pub fallback_ops: u64,
    pub client_total: LogHistogram,
    pub commit_total: LogHistogram,
    /// Per-segment durations, one row per [`Seg`] in enum order.
    pub segs: Vec<SegRow>,
    /// Per-(op-class, segment) rows.
    pub per_class: Vec<ClassBlame>,
    /// Per-hop wire time on critical paths.
    pub hops: Vec<HopRow>,
    /// Per-(node, segment) on-node time on critical paths.
    pub nodes: Vec<NodeRow>,
    /// The K slowest ops by client-visible latency.
    pub exemplars: Vec<Exemplar>,
}

impl BlameTable {
    pub fn new(protocol: &str) -> Self {
        Self {
            protocol: protocol.to_string(),
            segs: Seg::ALL
                .iter()
                .map(|&seg| SegRow {
                    seg,
                    hist: LogHistogram::new(),
                })
                .collect(),
            ..Self::default()
        }
    }

    /// Build the table from a run's sampled spans and message edges — the
    /// doctor's entry point.
    pub fn from_spans(protocol: &str, spans: &[OpSpan], edges: &[MsgEdge]) -> Self {
        let mut by_op: HashMap<OpId, Vec<&MsgEdge>> = HashMap::new();
        for e in edges {
            if let Some(op) = e.op {
                by_op.entry(op).or_default().push(e);
            }
        }
        let empty: Vec<&MsgEdge> = Vec::new();
        let mut t = Self::new(protocol);
        let mut blamed: Vec<(OpBlame, &OpSpan)> = Vec::new();
        for span in spans {
            let op_edges = by_op.get(&span.op).unwrap_or(&empty);
            if let Some(b) = blame_span(span, op_edges) {
                t.absorb_op(&b, op_edges);
                blamed.push((b, span));
            }
        }
        // Tail exemplars: the K slowest by client-visible latency.
        blamed.sort_by_key(|x| std::cmp::Reverse(x.0.client_ns));
        t.exemplars = blamed
            .iter()
            .take(EXEMPLARS)
            .map(|(b, _)| Exemplar {
                op: b.op.to_string(),
                class: b.class.clone(),
                cross: b.cross,
                client_ns: b.client_ns,
                commit_ns: b.commit_ns,
                segs: Seg::ALL
                    .iter()
                    .filter(|s| b.segs[s.index()] > 0)
                    .map(|&seg| {
                        let mut hist = LogHistogram::new();
                        hist.record(b.segs[seg.index()]);
                        SegRow { seg, hist }
                    })
                    .collect(),
                chain: b.chain.clone(),
            })
            .collect();
        t
    }

    /// Fold one op's decomposition into the histograms.
    fn absorb_op(&mut self, b: &OpBlame, op_edges: &[&MsgEdge]) {
        self.ops += 1;
        if b.fallback {
            self.fallback_ops += 1;
        }
        self.client_total.record(b.client_ns);
        if b.commit_ns > 0 {
            self.commit_total.record(b.commit_ns);
        }
        for seg in Seg::ALL {
            let v = b.segs[seg.index()];
            if v > 0 {
                self.segs[seg.index()].hist.record(v);
            }
        }
        let class_row = match self.per_class.iter_mut().find(|c| c.class == b.class) {
            Some(c) => c,
            None => {
                self.per_class.push(ClassBlame {
                    class: b.class.clone(),
                    client_total: LogHistogram::new(),
                    segs: Vec::new(),
                });
                self.per_class.last_mut().expect("just pushed")
            }
        };
        class_row.client_total.record(b.client_ns);
        for seg in Seg::ALL {
            let v = b.segs[seg.index()];
            if v == 0 {
                continue;
            }
            match class_row.segs.iter_mut().find(|r| r.seg == seg) {
                Some(r) => r.hist.record(v),
                None => {
                    let mut hist = LogHistogram::new();
                    hist.record(v);
                    class_row.segs.push(SegRow { seg, hist });
                }
            }
        }
        // Per-hop / per-node attribution from the chain rows. The chain
        // labels carry the endpoints; re-walking the hop structure keeps
        // this exact without a second path extraction.
        let _ = op_edges;
        for row in &b.chain {
            match row.seg {
                Seg::ReqWire | Seg::ReplyWire => {
                    if let Some((from, to)) = parse_hop(&row.label) {
                        self.record_hop(from, to, row.seg, row.dur_ns);
                    }
                }
                Seg::Dispatch | Seg::Execute | Seg::CommitOnPath => {
                    if let Some(node) = parse_node(&row.label) {
                        self.record_node(node, row.seg, row.dur_ns);
                    } else if let Some((from, to)) = parse_hop(&row.label) {
                        // commit-onpath wire rows.
                        self.record_hop(from, to, row.seg, row.dur_ns);
                    }
                }
                _ => {}
            }
        }
    }

    fn record_hop(&mut self, from: FlowNode, to: FlowNode, seg: Seg, ns: u64) {
        match self
            .hops
            .iter_mut()
            .find(|h| h.from == from && h.to == to && h.seg == seg)
        {
            Some(h) => h.hist.record(ns),
            None => {
                let mut hist = LogHistogram::new();
                hist.record(ns);
                self.hops.push(HopRow {
                    from,
                    to,
                    seg,
                    hist,
                });
            }
        }
    }

    fn record_node(&mut self, node: FlowNode, seg: Seg, ns: u64) {
        match self
            .nodes
            .iter_mut()
            .find(|n| n.node == node && n.seg == seg)
        {
            Some(n) => n.hist.record(ns),
            None => {
                let mut hist = LogHistogram::new();
                hist.record(ns);
                self.nodes.push(NodeRow { node, seg, hist });
            }
        }
    }

    /// Fold another table in (partition/process merge). Histograms add
    /// element-wise; exemplars keep the union's K slowest.
    pub fn merge(&mut self, other: &BlameTable) {
        if self.protocol.is_empty() {
            self.protocol = other.protocol.clone();
        }
        if self.segs.is_empty() {
            *self = Self::new(&self.protocol.clone());
        }
        self.ops += other.ops;
        self.fallback_ops += other.fallback_ops;
        self.client_total.merge(&other.client_total);
        self.commit_total.merge(&other.commit_total);
        for (mine, theirs) in self.segs.iter_mut().zip(&other.segs) {
            mine.hist.merge(&theirs.hist);
        }
        for c in &other.per_class {
            match self.per_class.iter_mut().find(|m| m.class == c.class) {
                Some(m) => {
                    m.client_total.merge(&c.client_total);
                    for r in &c.segs {
                        match m.segs.iter_mut().find(|x| x.seg == r.seg) {
                            Some(x) => x.hist.merge(&r.hist),
                            None => m.segs.push(r.clone()),
                        }
                    }
                }
                None => self.per_class.push(c.clone()),
            }
        }
        for h in &other.hops {
            match self
                .hops
                .iter_mut()
                .find(|m| m.from == h.from && m.to == h.to && m.seg == h.seg)
            {
                Some(m) => m.hist.merge(&h.hist),
                None => self.hops.push(h.clone()),
            }
        }
        for n in &other.nodes {
            match self
                .nodes
                .iter_mut()
                .find(|m| m.node == n.node && m.seg == n.seg)
            {
                Some(m) => m.hist.merge(&n.hist),
                None => self.nodes.push(n.clone()),
            }
        }
        self.exemplars.extend(other.exemplars.iter().cloned());
        self.exemplars
            .sort_by_key(|e| std::cmp::Reverse(e.client_ns));
        self.exemplars.truncate(EXEMPLARS);
    }

    /// Mean nanoseconds attributed to `seg` per op that reached it.
    pub fn seg_mean(&self, seg: Seg) -> f64 {
        self.segs
            .get(seg.index())
            .map(|r| r.hist.mean())
            .unwrap_or(0.0)
    }

    /// Mean nanoseconds of `seg` amortized over *all* blamed ops — the
    /// comparable per-op cost used by the run-diff (a segment absent from
    /// an op contributes zero there, and must here too).
    pub fn seg_share_ns(&self, seg: Seg) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.segs
            .get(seg.index())
            .map(|r| r.hist.sum as f64 / self.ops as f64)
            .unwrap_or(0.0)
    }

    /// The client-visible segments ranked by total attributed time,
    /// non-empty only.
    pub fn top_segments(&self) -> Vec<(Seg, &LogHistogram)> {
        let mut v: Vec<(Seg, &LogHistogram)> = self
            .segs
            .iter()
            .filter(|r| r.hist.count > 0)
            .map(|r| (r.seg, &r.hist))
            .collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1.sum));
        v
    }

    /// The doctor's text rendering.
    pub fn render(&self) -> String {
        fn row(label: &str, h: &LogHistogram, denom: u64) -> String {
            let s = h.summary();
            let share = if denom == 0 {
                0.0
            } else {
                100.0 * h.sum as f64 / denom as f64
            };
            format!(
                "  {label:<24} n={:<8} mean={:<9} p50={:<9} p99={:<9} max={:<9} share={share:>5.1}%\n",
                s.count,
                fmt_ns_f(s.mean_ns),
                HistSummary::fmt_ns(s.p50_ns),
                HistSummary::fmt_ns(s.p99_ns),
                HistSummary::fmt_ns(s.max_ns),
            )
        }
        let mut out = String::new();
        out.push_str(&format!(
            "== blame · protocol {} · {} ops",
            self.protocol, self.ops
        ));
        if self.fallback_ops > 0 {
            out.push_str(&format!(
                " ({} via phase-window fallback)",
                self.fallback_ops
            ));
        }
        out.push_str(" ==\n");
        out.push_str(&format!(
            "client-visible window: mean {} over {} ops\n",
            fmt_ns_f(self.client_total.mean()),
            self.client_total.count,
        ));
        for (seg, hist) in self
            .segs
            .iter()
            .filter(|r| r.seg.is_client_visible() && r.hist.count > 0)
            .map(|r| (r.seg, &r.hist))
        {
            out.push_str(&row(seg.name(), hist, self.client_total.sum));
        }
        if self.commit_total.count > 0 {
            out.push_str(&format!(
                "off-path commitment suffix: mean {} over {} ops\n",
                fmt_ns_f(self.commit_total.mean()),
                self.commit_total.count,
            ));
            for (seg, hist) in self
                .segs
                .iter()
                .filter(|r| !r.seg.is_client_visible() && r.hist.count > 0)
                .map(|r| (r.seg, &r.hist))
            {
                out.push_str(&row(seg.name(), hist, self.commit_total.sum));
            }
        } else {
            out.push_str(&format!(
                "off-path commitment suffix: none ({} commits before replying)\n",
                self.protocol
            ));
        }
        if !self.per_class.is_empty() {
            out.push_str("per-class top segment:\n");
            let mut classes: Vec<&ClassBlame> = self.per_class.iter().collect();
            classes.sort_by(|a, b| a.class.cmp(&b.class));
            for c in classes {
                let top = c.segs.iter().max_by_key(|r| r.hist.sum);
                if let Some(top) = top {
                    out.push_str(&format!(
                        "  {:<10} n={:<8} client mean={:<9} top segment {} ({})\n",
                        c.class,
                        c.client_total.count,
                        fmt_ns_f(c.client_total.mean()),
                        top.seg.name(),
                        fmt_ns_f(top.hist.mean()),
                    ));
                }
            }
        }
        if !self.hops.is_empty() {
            out.push_str("critical-path wire time per hop:\n");
            let mut hops: Vec<&HopRow> = self.hops.iter().collect();
            hops.sort_by_key(|h| std::cmp::Reverse(h.hist.sum));
            for h in hops.iter().take(12) {
                let s = h.hist.summary();
                out.push_str(&format!(
                    "  {:<4} → {:<4} {:<14} n={:<8} mean={:<9} p99={}\n",
                    h.from.to_string(),
                    h.to.to_string(),
                    h.seg.name(),
                    s.count,
                    fmt_ns_f(s.mean_ns),
                    HistSummary::fmt_ns(s.p99_ns),
                ));
            }
        }
        if !self.nodes.is_empty() {
            out.push_str("critical-path on-node time:\n");
            let mut nodes: Vec<&NodeRow> = self.nodes.iter().collect();
            nodes.sort_by_key(|n| std::cmp::Reverse(n.hist.sum));
            for n in nodes.iter().take(12) {
                let s = n.hist.summary();
                out.push_str(&format!(
                    "  {:<9} {:<14} n={:<8} mean={:<9} p99={}\n",
                    n.node.to_string(),
                    n.seg.name(),
                    s.count,
                    fmt_ns_f(s.mean_ns),
                    HistSummary::fmt_ns(s.p99_ns),
                ));
            }
        }
        for (i, e) in self.exemplars.iter().enumerate() {
            out.push_str(&format!(
                "exemplar #{} · {} · {} · {} · client {} / commitment {}\n",
                i + 1,
                e.op,
                e.class,
                if e.cross {
                    "cross-server"
                } else {
                    "single-server"
                },
                fmt_ns_f(e.client_ns as f64),
                fmt_ns_f(e.commit_ns as f64),
            ));
            for c in &e.chain {
                out.push_str(&format!(
                    "  +{:<11} {:<14} {} ({})\n",
                    HistSummary::fmt_ns(c.t_rel_ns),
                    c.seg.name(),
                    c.label,
                    HistSummary::fmt_ns(c.dur_ns),
                ));
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("BlameTable serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad BlameTable JSON: {e:?}"))
    }
}

/// `s3`-style hop endpoints out of a chain label ("SUBOP-REQ s0 → s1").
fn parse_hop(label: &str) -> Option<(FlowNode, FlowNode)> {
    let (lhs, rhs) = label.split_once(" → ")?;
    let from = parse_flow(lhs.rsplit(' ').next()?)?;
    let to = parse_flow(rhs.trim())?;
    Some((from, to))
}

/// The node out of an on-node chain label ("execute @ s1").
fn parse_node(label: &str) -> Option<FlowNode> {
    let (_, rhs) = label.split_once(" @ ")?;
    parse_flow(rhs.trim())
}

fn parse_flow(s: &str) -> Option<FlowNode> {
    let (tag, num) = s.split_at(1);
    let n: u32 = num.parse().ok()?;
    match tag {
        "s" => Some(FlowNode::Server(n)),
        "c" => Some(FlowNode::Client(n)),
        _ => None,
    }
}

/// One segment's contribution to a latency delta between two runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegDelta {
    pub seg: Seg,
    /// Per-op mean over all blamed ops in the base run.
    pub base_ns: f64,
    pub new_ns: f64,
    /// `new - base`.
    pub delta_ns: f64,
    /// Significance band: two standard errors (bucket-variance estimate)
    /// plus the histograms' quantization resolution.
    pub band_ns: f64,
    pub significant: bool,
}

/// The run-diff: the client-visible latency delta between two runs,
/// attributed to segments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlameDiff {
    pub base_protocol: String,
    pub new_protocol: String,
    pub base_client_ns: f64,
    pub new_client_ns: f64,
    /// Per-segment deltas, sorted by |delta| descending.
    pub rows: Vec<SegDelta>,
    /// The hop families whose wire/on-node time shifted most (label,
    /// delta), sorted by |delta| descending. Significant entries only.
    pub hop_shifts: Vec<(String, f64)>,
}

/// Relative quantization error of the log-bucketed histograms.
const HIST_RESOLUTION: f64 = 0.031;

fn per_op(hist_sum: u64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        hist_sum as f64 / ops as f64
    }
}

/// Standard error of a segment's per-op mean.
fn seg_se(hist: &LogHistogram, ops: u64) -> f64 {
    if ops == 0 || hist.count == 0 {
        return 0.0;
    }
    // Treat ops that skipped the segment as zero samples: the per-op
    // variance is E[x²] - E[x]² over all ops.
    let n = ops as f64;
    let mean = hist.sum as f64 / n;
    let ex2 = (hist.variance() * (hist.count.saturating_sub(1)) as f64
        + hist.mean() * hist.mean() * hist.count as f64)
        / n;
    let var = (ex2 - mean * mean).max(0.0);
    (var / n).sqrt()
}

/// Attribute the latency delta between `base` and `new` to segments.
pub fn diff(base: &BlameTable, new: &BlameTable) -> BlameDiff {
    let mut rows: Vec<SegDelta> = Seg::ALL
        .iter()
        .map(|&seg| {
            let bh = &base.segs[seg.index()].hist;
            let nh = &new.segs[seg.index()].hist;
            let base_ns = per_op(bh.sum, base.ops);
            let new_ns = per_op(nh.sum, new.ops);
            let delta_ns = new_ns - base_ns;
            let band_ns = 2.0 * (seg_se(bh, base.ops) + seg_se(nh, new.ops))
                + HIST_RESOLUTION * (base_ns + new_ns) / 2.0;
            SegDelta {
                seg,
                base_ns,
                new_ns,
                delta_ns,
                band_ns,
                significant: delta_ns.abs() > band_ns && delta_ns.abs() > 1.0,
            }
        })
        .filter(|d| d.base_ns > 0.0 || d.new_ns > 0.0)
        .collect();
    rows.sort_by(|a, b| b.delta_ns.abs().total_cmp(&a.delta_ns.abs()));

    // Hop-family shifts: wire and on-node rows keyed identically across
    // the two tables.
    let mut hop_shifts: Vec<(String, f64)> = Vec::new();
    let mut keys: Vec<(String, f64, u64)> = Vec::new(); // (key, base per-op, base sum present?)
    for h in &base.hops {
        keys.push((
            format!("{} → {} {}", h.from, h.to, h.seg.name()),
            per_op(h.hist.sum, base.ops),
            1,
        ));
    }
    for n in &base.nodes {
        keys.push((
            format!("{} {}", n.node, n.seg.name()),
            per_op(n.hist.sum, base.ops),
            1,
        ));
    }
    let lookup_new = |key: &str| -> f64 {
        for h in &new.hops {
            if format!("{} → {} {}", h.from, h.to, h.seg.name()) == key {
                return per_op(h.hist.sum, new.ops);
            }
        }
        for n in &new.nodes {
            if format!("{} {}", n.node, n.seg.name()) == key {
                return per_op(n.hist.sum, new.ops);
            }
        }
        0.0
    };
    // New-only keys too (a hop that appears only in the new run is the
    // most interesting kind of shift).
    for h in &new.hops {
        let key = format!("{} → {} {}", h.from, h.to, h.seg.name());
        if !keys.iter().any(|(k, _, _)| *k == key) {
            keys.push((key, 0.0, 0));
        }
    }
    for n in &new.nodes {
        let key = format!("{} {}", n.node, n.seg.name());
        if !keys.iter().any(|(k, _, _)| *k == key) {
            keys.push((key, 0.0, 0));
        }
    }
    for (key, base_ns, _) in keys {
        let new_ns = lookup_new(&key);
        let delta = new_ns - base_ns;
        let band = HIST_RESOLUTION * (base_ns + new_ns) / 2.0;
        if delta.abs() > band && delta.abs() > 1.0 {
            hop_shifts.push((key, delta));
        }
    }
    hop_shifts.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    hop_shifts.truncate(10);

    BlameDiff {
        base_protocol: base.protocol.clone(),
        new_protocol: new.protocol.clone(),
        base_client_ns: base.client_total.mean(),
        new_client_ns: new.client_total.mean(),
        rows,
        hop_shifts,
    }
}

impl BlameDiff {
    /// Text rendering of the run-diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let d = self.new_client_ns - self.base_client_ns;
        let pct = if self.base_client_ns > 0.0 {
            100.0 * d / self.base_client_ns
        } else {
            0.0
        };
        out.push_str(&format!(
            "== blame diff · {} → {} ==\nclient-visible mean: {} → {} ({}{} · {:+.1}%)\n",
            self.base_protocol,
            self.new_protocol,
            fmt_ns_f(self.base_client_ns),
            fmt_ns_f(self.new_client_ns),
            if d >= 0.0 { "+" } else { "-" },
            fmt_ns_f(d.abs()),
            pct,
        ));
        out.push_str(&format!(
            "  {:<16} {:>10} {:>10} {:>11} {:>10}  verdict\n",
            "segment", "base", "new", "delta", "band"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<16} {:>10} {:>10} {}{:>10} {:>10}  {}\n",
                r.seg.name(),
                fmt_ns_f(r.base_ns),
                fmt_ns_f(r.new_ns),
                if r.delta_ns >= 0.0 { "+" } else { "-" },
                fmt_ns_f(r.delta_ns.abs()),
                fmt_ns_f(r.band_ns),
                if r.significant {
                    "SIGNIFICANT"
                } else {
                    "within noise"
                },
            ));
        }
        if !self.hop_shifts.is_empty() {
            out.push_str("largest hop shifts:\n");
            for (key, delta) in &self.hop_shifts {
                out.push_str(&format!(
                    "  {:<28} {}{}/op\n",
                    key,
                    if *delta >= 0.0 { "+" } else { "-" },
                    fmt_ns_f(delta.abs()),
                ));
            }
        }
        out
    }

    /// The segment blamed for the biggest significant latency increase.
    pub fn prime_suspect(&self) -> Option<&SegDelta> {
        self.rows
            .iter()
            .filter(|r| r.significant && r.delta_ns > 0.0)
            .max_by(|a, b| a.delta_ns.total_cmp(&b.delta_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::MsgKind;
    use cx_types::{OpClass, ProcId, ServerId, SimTime};

    fn op(seq: u64) -> OpId {
        OpId::new(ProcId::new(3, 0), seq)
    }

    fn edge(
        id: u64,
        seq: u64,
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        sent: u64,
        recv: u64,
    ) -> MsgEdge {
        MsgEdge {
            id,
            op: Some(op(seq)),
            kind,
            from,
            to,
            sent_ns: sent,
            recv_ns: recv,
        }
    }

    fn cx_like_span(seq: u64) -> OpSpan {
        let mut s = OpSpan::new(op(seq), OpClass::Create, true, SimTime(0));
        s.stamp(Phase::Dispatched, SimTime(100), None);
        s.stamp(Phase::Executed, SimTime(700), Some(ServerId(1)));
        s.stamp(Phase::Replied, SimTime(1_000), None);
        s.stamp(Phase::VoteSent, SimTime(5_000), Some(ServerId(0)));
        s.stamp(Phase::DecisionSent, SimTime(6_000), Some(ServerId(0)));
        s.stamp(Phase::Acked, SimTime(7_000), Some(ServerId(1)));
        s.stamp(Phase::Completed, SimTime(8_000), Some(ServerId(0)));
        s
    }

    #[test]
    fn cx_span_blames_offpath_suffix() {
        let edges = [
            edge(
                1,
                1,
                MsgKind::SubOpReq,
                FlowNode::Client(3),
                FlowNode::Server(1),
                100,
                300,
            ),
            edge(
                2,
                1,
                MsgKind::SubOpResp,
                FlowNode::Server(1),
                FlowNode::Client(3),
                700,
                950,
            ),
        ];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        let b = blame_span(&cx_like_span(1), &refs).unwrap();
        b.check().unwrap();
        assert_eq!(b.client_ns, 1_000);
        assert_eq!(b.commit_ns, 7_000);
        assert_eq!(b.segs[Seg::IssueQueue.index()], 100);
        assert_eq!(b.segs[Seg::ReqWire.index()], 200);
        assert_eq!(b.segs[Seg::Execute.index()], 400);
        assert_eq!(b.segs[Seg::ReplyWire.index()], 250);
        assert_eq!(b.segs[Seg::ReplyDeliver.index()], 50);
        assert_eq!(b.segs[Seg::CommitOnPath.index()], 0, "Cx: nothing on-path");
        assert_eq!(b.segs[Seg::VoteLaunch.index()], 4_000);
        assert_eq!(b.segs[Seg::VoteRound.index()], 1_000);
        assert_eq!(b.segs[Seg::DecisionRound.index()], 1_000);
        assert_eq!(b.segs[Seg::Complete.index()], 1_000);
    }

    #[test]
    fn twopc_like_vote_is_blamed_onpath() {
        // 2PC: the vote/decision round-trip happens *before* the reply and
        // rides op-tagged VoteExec edges; the suffix stays empty.
        let mut s = OpSpan::new(op(2), OpClass::Mkdir, true, SimTime(0));
        s.stamp(Phase::Dispatched, SimTime(50), None);
        s.stamp(Phase::VoteSent, SimTime(400), Some(ServerId(0)));
        s.stamp(Phase::Executed, SimTime(800), Some(ServerId(1)));
        s.stamp(Phase::Replied, SimTime(1_000), None);
        let edges = [
            edge(
                1,
                2,
                MsgKind::OpReq,
                FlowNode::Client(3),
                FlowNode::Server(0),
                50,
                150,
            ),
            edge(
                2,
                2,
                MsgKind::VoteExec,
                FlowNode::Server(0),
                FlowNode::Server(1),
                400,
                500,
            ),
            edge(
                3,
                2,
                MsgKind::SubOpResp,
                FlowNode::Server(1),
                FlowNode::Client(3),
                800,
                900,
            ),
        ];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        let b = blame_span(&s, &refs).unwrap();
        b.check().unwrap();
        assert_eq!(b.commit_ns, 0, "2PC has no off-path suffix");
        // Gap at s0 before VoteExec (250) + VoteExec flight (100).
        assert_eq!(b.segs[Seg::CommitOnPath.index()], 350);
        assert!(b.segs[Seg::Execute.index()] > 0);
    }

    #[test]
    fn fallback_decomposition_still_sums() {
        let b = blame_span(&cx_like_span(3), &[]).unwrap();
        assert!(b.fallback);
        b.check().unwrap();
        assert_eq!(b.segs[Seg::IssueQueue.index()], 100);
        assert_eq!(b.segs[Seg::Execute.index()], 600);
        assert_eq!(b.segs[Seg::ReplyDeliver.index()], 300);
    }

    #[test]
    fn table_aggregates_and_merges() {
        let spans: Vec<OpSpan> = (1..=6).map(cx_like_span).collect();
        let edges: Vec<MsgEdge> = (1..=6)
            .flat_map(|i| {
                vec![
                    edge(
                        i * 2,
                        i,
                        MsgKind::SubOpReq,
                        FlowNode::Client(3),
                        FlowNode::Server(1),
                        100,
                        300,
                    ),
                    edge(
                        i * 2 + 1,
                        i,
                        MsgKind::SubOpResp,
                        FlowNode::Server(1),
                        FlowNode::Client(3),
                        700,
                        950,
                    ),
                ]
            })
            .collect();
        let t = BlameTable::from_spans("cx", &spans, &edges);
        assert_eq!(t.ops, 6);
        assert_eq!(t.fallback_ops, 0);
        assert_eq!(t.client_total.count, 6);
        assert_eq!(t.commit_total.count, 6);
        assert_eq!(t.exemplars.len(), 5, "top-K exemplars kept");
        assert!(t.hops.iter().any(|h| h.seg == Seg::ReqWire));
        assert!(t
            .nodes
            .iter()
            .any(|n| n.node == FlowNode::Server(1) && n.seg == Seg::Execute));

        let mut a = BlameTable::from_spans("cx", &spans[..3], &edges);
        let b = BlameTable::from_spans("cx", &spans[3..], &edges);
        a.merge(&b);
        assert_eq!(a.ops, t.ops);
        assert_eq!(a.client_total.count, t.client_total.count);
        assert_eq!(
            a.segs[Seg::Execute.index()].hist.sum,
            t.segs[Seg::Execute.index()].hist.sum
        );

        let back = BlameTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back.ops, t.ops);
        assert_eq!(back.exemplars.len(), t.exemplars.len());
        let text = t.render();
        assert!(text.contains("issue-queue"));
        assert!(text.contains("exemplar #1"));
    }

    #[test]
    fn diff_flags_injected_execute_delay() {
        let base_spans: Vec<OpSpan> = (1..=20).map(cx_like_span).collect();
        let mk_edges = |extra_exec: u64| -> Vec<MsgEdge> {
            (1..=20u64)
                .flat_map(|i| {
                    vec![
                        edge(
                            i * 2,
                            i,
                            MsgKind::SubOpReq,
                            FlowNode::Client(3),
                            FlowNode::Server(1),
                            100,
                            300,
                        ),
                        edge(
                            i * 2 + 1,
                            i,
                            MsgKind::SubOpResp,
                            FlowNode::Server(1),
                            FlowNode::Client(3),
                            700 + extra_exec,
                            950 + extra_exec,
                        ),
                    ]
                })
                .collect()
        };
        let slow_spans: Vec<OpSpan> = (1..=20)
            .map(|i| {
                let mut s = cx_like_span(i);
                // The participant took 5µs longer; reply shifts with it.
                s.at_ns[Phase::Executed.index()] = 5_700;
                s.at_ns[Phase::Replied.index()] = 6_000;
                s
            })
            .collect();
        let base = BlameTable::from_spans("cx", &base_spans, &mk_edges(0));
        let slow = BlameTable::from_spans("cx", &slow_spans, &mk_edges(5_000));
        let d = diff(&base, &slow);
        let suspect = d.prime_suspect().expect("a significant segment");
        assert_eq!(
            suspect.seg,
            Seg::Execute,
            "delay lands on execute: {}",
            d.render()
        );
        assert!(suspect.delta_ns > 4_000.0);
        assert!(
            d.hop_shifts
                .iter()
                .any(|(k, v)| k.contains("s1 execute") && *v > 4_000.0),
            "hop shift names the delayed server: {:?}",
            d.hop_shifts
        );
        let text = d.render();
        assert!(text.contains("SIGNIFICANT"));
    }
}
