//! cx-obs — the observability plane for the Cx reproduction.
//!
//! Four pieces, layered so the protocol engines and runtimes only ever see
//! the cheap sink:
//!
//! - [`span`]: the op-lifecycle phase model (Issued → … → Completed) with
//!   virtual-time stamps, split into the client-visible prefix and the
//!   decoupled commitment suffix, plus structured [`StuckOp`] diagnostics.
//! - [`hist`]: log-bucketed, mergeable latency histograms (p50/p99/p99.9)
//!   replacing mean-only reporting.
//! - [`sink`]: the enum collector. `ObsSink::Off` makes every emission a
//!   single-branch no-op; recording never touches protocol or scheduler
//!   state, so golden digests are identical with the sink on or off.
//! - [`report`]: the exportable snapshot and the exporters — Chrome
//!   trace-event JSON for Perfetto, a JSONL event stream, and the text
//!   dashboard behind `cx-obs report`.

pub mod hist;
pub mod report;
pub mod sink;
pub mod span;

pub use hist::{fmt_ns_f, HistSummary, LogHistogram};
pub use report::{ClassRow, ObsReport, SegmentRow};
pub use sink::{EngineGauges, GaugeKind, GaugeSample, ObsConfig, ObsSink, Recorder};
pub use span::{OpSpan, Phase, StuckOp};
