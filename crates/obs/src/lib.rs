//! cx-obs — the observability plane for the Cx reproduction.
//!
//! Four pieces, layered so the protocol engines and runtimes only ever see
//! the cheap sink:
//!
//! - [`span`]: the op-lifecycle phase model (Issued → … → Completed) with
//!   virtual-time stamps, split into the client-visible prefix and the
//!   decoupled commitment suffix, plus structured [`StuckOp`] diagnostics.
//! - [`hist`]: log-bucketed, mergeable latency histograms (p50/p99/p99.9)
//!   replacing mean-only reporting.
//! - [`sink`]: the enum collector. `ObsSink::Off` makes every emission a
//!   single-branch no-op; recording never touches protocol or scheduler
//!   state, so golden digests are identical with the sink on or off.
//! - [`report`]: the exportable snapshot and the exporters — Chrome
//!   trace-event JSON for Perfetto, a JSONL event stream, and the text
//!   dashboard behind `cx-obs report`.
//!
//! The introspection plane (PR 5) adds three more:
//!
//! - [`registry`]: the typed metric registry — Cx-specific counters,
//!   gauges and histogram series with Prometheus-text and JSON
//!   exposition, safe for concurrent publication from the threaded
//!   runtime and consumed live by `cx-obs top`.
//! - [`flow`]: causal message-edge tracing — every cross-server message
//!   becomes a flow arc connecting coordinator and participant tracks in
//!   the Perfetto trace, and feeds `cx-obs trace --op`.
//! - [`flight`]: the crash flight recorder — an always-on ring of recent
//!   events dumped as a post-mortem Perfetto/JSONL pair when chaos sees a
//!   crash, a stuck op, or a digest/oracle mismatch.
//!
//! The wall-clock wire plane (PR 9) adds:
//!
//! - [`net`]: per-flush spans for the Perfetto trace and the per-peer
//!   table (wire totals, RTT percentiles, clock offsets) behind
//!   `cx-obs net`.
//!
//! The blame plane (PR 10) adds:
//!
//! - [`path`]: critical-path extraction over one op's span + message
//!   edges, with the exact-sum clamping invariant.
//! - [`blame`]: the segment taxonomy, per-op decomposition, mergeable
//!   blame tables, tail exemplars, and the run-diff — all behind
//!   `cx-obs doctor`.

pub mod blame;
pub mod drift;
pub mod flight;
pub mod flow;
pub mod hist;
pub mod net;
pub mod path;
pub mod registry;
pub mod report;
pub mod sink;
pub mod span;

pub use blame::{blame_span, diff as blame_diff, BlameDiff, BlameTable, OpBlame, Seg};
pub use flight::{FlightEvent, FlightRecorder, TimedEvent};
pub use flow::{FlowNode, MsgEdge, MsgKind};
pub use hist::{fmt_ns_f, HistSummary, LogHistogram};
pub use net::{chrome_flush_events, FlushSpan, NetPeerRow, NetTable};
pub use path::{critical_path, CriticalPath, EdgeClass, WalkHop};
pub use registry::{Counter, Gauge, MetricRegistry, MetricsSnapshot, Series};
pub use report::{ClassRow, ObsReport, SegmentRow};
pub use sink::{EngineGauges, GaugeKind, GaugeSample, ObsConfig, ObsSink, Recorder};
pub use span::{OpSpan, Phase, StuckOp};
