//! Log-bucketed latency histograms (HDR-style).
//!
//! Values land in buckets whose width grows with magnitude: values below
//! 64 are exact, larger values share an octave split into 32 linear
//! sub-buckets, so any reported quantile is within ~3% of the true value
//! while the whole structure is a flat `Vec<u64>` of at most ~2k counters.
//! Histograms merge by element-wise addition, which makes them composable
//! across servers, runs, and processes — the property `LatencyStat` (mean
//! only) fundamentally lacks for tail percentiles.

use serde::{Deserialize, Serialize};

/// log2 of the linear sub-buckets per octave (32 → ≤3.1% relative error).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;

/// A mergeable latency histogram over `u64` nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Meaningful only when `count > 0`.
    pub min: u64,
    /// Bucket counters, trimmed to the highest occupied bucket.
    counts: Vec<u64>,
}

/// The bucket a value falls into; public so tests can assert the oracle
/// property "reported quantile lands in the true quantile's bucket".
pub fn bucket_of(v: u64) -> usize {
    if v < 2 * SUB as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let group = (top - SUB_BITS) as usize;
        let sub = ((v >> (top - SUB_BITS)) as usize) & (SUB - 1);
        (group + 1) * SUB + sub
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 2 * SUB {
        (idx as u64, idx as u64)
    } else {
        let group = (idx / SUB - 1) as u32;
        let sub = (idx % SUB) as u64;
        let lo = (SUB as u64 + sub) << group;
        (lo, lo + ((1u64 << group) - 1))
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Element-wise merge: `self` afterwards describes the union of both
    /// sample sets.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0 < q ≤ 100): the upper bound of the
    /// bucket holding the rank-`ceil(q/100·count)` sample, capped at the
    /// exact observed maximum so `percentile(100) == max`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (_, hi) = bucket_bounds(idx);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Approximate sample variance, reconstructed from bucket midpoints.
    /// Good to the bucket resolution (≤3.1% relative on the values), which
    /// is all the blame run-diff's significance band needs.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut acc = 0.0f64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(idx);
            let mid = (lo as f64 + hi as f64) / 2.0;
            let d = mid - mean;
            acc += d * d * n as f64;
        }
        acc / (self.count - 1) as f64
    }

    /// Compact fixed-quantile digest for tables and JSON artifacts.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean_ns: self.mean(),
            min_ns: if self.count == 0 { 0 } else { self.min },
            p50_ns: self.percentile(50.0),
            p90_ns: self.percentile(90.0),
            p99_ns: self.percentile(99.0),
            p999_ns: self.percentile(99.9),
            max_ns: self.max,
        }
    }
}

/// Fixed quantiles of one histogram, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub count: u64,
    pub mean_ns: f64,
    pub min_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl HistSummary {
    /// `12.3µs`-style rendering used by the text dashboard and tables.
    pub fn fmt_ns(ns: u64) -> String {
        fmt_ns_f(ns as f64)
    }
}

/// Human units for a nanosecond quantity.
pub fn fmt_ns_f(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for v in (0..4096).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}] of bucket {b}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 42, 63] {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.min, 0);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..100_000u64 {
            h.record(v * 17);
        }
        for q in [50.0, 90.0, 99.0, 99.9] {
            let exact = {
                let rank = ((q / 100.0) * h.count as f64).ceil() as u64;
                rank * 17
            };
            let got = h.percentile(q) as f64;
            let err = (got - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "q={q}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (mut a, mut b, mut c) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [3u64, 900, 1_000_000, 7] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 88_888, 12] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
        let mut empty = LogHistogram::new();
        empty.merge(&c);
        assert_eq!(empty, c);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(1_000_000);
        let js = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&js).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.summary().count, 2);
    }

    #[test]
    fn human_units() {
        assert_eq!(fmt_ns_f(900.0), "900ns");
        assert_eq!(fmt_ns_f(1500.0), "1.5µs");
        assert_eq!(fmt_ns_f(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns_f(3_000_000_000.0), "3.00s");
    }
}
