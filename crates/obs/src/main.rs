//! `cx-obs` — inspect observability artifacts written by `--obs` runs.
//!
//! ```text
//! cx-obs report <report.json>            render the text dashboard
//! cx-obs check  <report.json>            validate phase accounting (CI smoke)
//! cx-obs trace  <report.json>            re-export the Chrome/Perfetto trace to stdout
//! cx-obs trace  <report.json> --op <id>  print one op's causal chain (phases + messages)
//! cx-obs top    <metrics.json>           render the live metric-registry snapshot
//! ```
//!
//! `top` reads the snapshot a threaded run writes via `--metrics-out`;
//! pair it with `watch` for a live view:
//! `watch -n1 'cx-obs top target/live.metrics.json'`.

use cx_obs::{MetricsSnapshot, ObsReport};
use std::process::ExitCode;

fn load_report(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    ObsReport::from_json(&text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: cx-obs <report|check|trace|top> <artifact.json> [--op <id>]");
            return ExitCode::from(2);
        }
    };
    if cmd == "top" {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cx-obs: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match MetricsSnapshot::from_json(&text) {
            Ok(snap) => {
                print!("{}", snap.render_top());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let rep = match load_report(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cx-obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "report" => {
            print!("{}", rep.render_dashboard());
            ExitCode::SUCCESS
        }
        "check" => match rep.validate() {
            Ok(()) => {
                println!(
                    "ok: {} spans, {} ops, {} message edges, \
                     phase accounting sums to client latency",
                    rep.spans.len(),
                    rep.ops_issued,
                    rep.edges.len(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs check failed: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => {
            // `--op <id>` switches from the full Perfetto export to the
            // one-op causal chain.
            let op = args
                .iter()
                .position(|a| a == "--op")
                .and_then(|i| args.get(i + 1));
            match op {
                Some(needle) => print!("{}", rep.render_causal(needle)),
                None => print!("{}", rep.to_chrome_trace()),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("cx-obs: unknown command '{other}' (want report|check|trace|top)");
            ExitCode::from(2)
        }
    }
}
