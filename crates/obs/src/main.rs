//! `cx-obs` — inspect observability artifacts written by `--obs` runs.
//!
//! ```text
//! cx-obs report <report.json>     render the text dashboard
//! cx-obs check  <report.json>     validate phase accounting (CI smoke)
//! cx-obs trace  <report.json>     re-export the Chrome/Perfetto trace to stdout
//! ```

use cx_obs::ObsReport;
use std::process::ExitCode;

fn load(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    ObsReport::from_json(&text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: cx-obs <report|check|trace> <report.json>");
            return ExitCode::from(2);
        }
    };
    let rep = match load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cx-obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "report" => {
            print!("{}", rep.render_dashboard());
            ExitCode::SUCCESS
        }
        "check" => match rep.validate() {
            Ok(()) => {
                println!(
                    "ok: {} spans, {} ops, phase accounting sums to client latency",
                    rep.spans.len(),
                    rep.ops_issued
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs check failed: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => {
            print!("{}", rep.to_chrome_trace());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("cx-obs: unknown command '{other}' (want report|check|trace)");
            ExitCode::from(2)
        }
    }
}
