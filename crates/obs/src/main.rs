//! `cx-obs` — inspect observability artifacts written by `--obs` runs.
//!
//! ```text
//! cx-obs report <report.json>            render the text dashboard
//! cx-obs check  <report.json>            validate phase accounting (CI smoke)
//! cx-obs trace  <report.json>            re-export the Chrome/Perfetto trace to stdout
//! cx-obs trace  <report.json> --op <id>  print one op's causal chain (phases + messages)
//! cx-obs top    <metrics.json>…          render metric-registry snapshots (merged)
//! cx-obs net    <run.net.json>           render the per-peer wire table
//! ```
//!
//! `top` reads the snapshot a threaded run writes via `--metrics-out`;
//! pair it with `watch` for a live view:
//! `watch -n1 'cx-obs top target/live.metrics.json'`. A multiproc TCP run
//! writes one snapshot per process — pass them all and `top` merges them
//! (counters add; histogram quantiles merge conservatively from their
//! summaries).

use cx_obs::{MetricsSnapshot, NetTable, ObsReport};
use std::process::ExitCode;

fn load_report(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    ObsReport::from_json(&text)
}

/// Read every snapshot path and fold them into one (see
/// [`MetricsSnapshot::merge`]).
fn load_merged_snapshots(paths: &[String]) -> Result<MetricsSnapshot, String> {
    let mut merged: Option<MetricsSnapshot> = None;
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let snap = MetricsSnapshot::from_json(&text)?;
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    merged.ok_or_else(|| "no snapshot files given".into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: cx-obs <report|check|trace|top|net> <artifact.json>… [--op <id>]");
            return ExitCode::from(2);
        }
    };
    if cmd == "top" {
        return match load_merged_snapshots(&args[1..]) {
            Ok(snap) => {
                print!("{}", snap.render_top());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "net" {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cx-obs: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match NetTable::from_json(&text) {
            Ok(table) => {
                print!("{}", table.render());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let rep = match load_report(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cx-obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "report" => {
            print!("{}", rep.render_dashboard());
            ExitCode::SUCCESS
        }
        "check" => match rep.validate() {
            Ok(()) => {
                println!(
                    "ok: {} spans, {} ops, {} message edges, {} wire flushes, \
                     phase accounting sums to client latency",
                    rep.spans.len(),
                    rep.ops_issued,
                    rep.edges.len(),
                    rep.flushes.len(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs check failed: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => {
            // `--op <id>` switches from the full Perfetto export to the
            // one-op causal chain.
            let op = args
                .iter()
                .position(|a| a == "--op")
                .and_then(|i| args.get(i + 1));
            match op {
                Some(needle) => print!("{}", rep.render_causal(needle)),
                None => print!("{}", rep.to_chrome_trace()),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("cx-obs: unknown command '{other}' (want report|check|trace|top|net)");
            ExitCode::from(2)
        }
    }
}
