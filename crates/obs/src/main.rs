//! `cx-obs` — inspect observability artifacts written by `--obs` runs.
//!
//! ```text
//! cx-obs report <report.json>            render the text dashboard
//! cx-obs check  <report.json>            validate phase accounting (CI smoke)
//! cx-obs trace  <report.json>            re-export the Chrome/Perfetto trace to stdout
//! cx-obs trace  <report.json> --op <id>  print one op's causal chain (phases + messages)
//! cx-obs doctor <report.json>            critical-path blame attribution
//! cx-obs doctor <report.json> --against <base.json>
//!                                        attribute the latency delta to segments
//! cx-obs doctor <report.json> --json     emit the blame table as JSON
//! cx-obs top    <metrics.json>…          render metric-registry snapshots (merged)
//! cx-obs net    <run.net.json>           render the per-peer wire table
//! cx-obs bench-drift <BENCH_PR*.json>…   perf-history trajectory table
//! ```
//!
//! `top` reads the snapshot a threaded run writes via `--metrics-out`;
//! pair it with `watch` for a live view:
//! `watch -n1 'cx-obs top target/live.metrics.json'`. A multiproc TCP run
//! writes one snapshot per process — pass them all and `top` merges them
//! (counters add; histogram quantiles merge conservatively from their
//! summaries). Snapshots that fail to read or parse are skipped with a
//! per-file warning on stderr, never silently folded into a partial view.

use cx_obs::{blame_diff, blame_span, MetricsSnapshot, NetTable, ObsReport};
use std::process::ExitCode;

fn load_report(path: &str) -> Result<ObsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    ObsReport::from_json(&text)
}

/// Read every snapshot path and fold the parseable ones into one (see
/// [`MetricsSnapshot::merge`]), warning per unusable file.
fn load_merged_snapshots(paths: &[String]) -> Result<MetricsSnapshot, String> {
    let mut merged: Option<MetricsSnapshot> = None;
    let mut skipped = 0usize;
    for path in paths {
        let snap = std::fs::read_to_string(path)
            .map_err(|e| format!("read {path}: {e}"))
            .and_then(|text| {
                MetricsSnapshot::from_json(&text).map_err(|e| format!("parse {path}: {e}"))
            });
        match snap {
            Ok(snap) => match &mut merged {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            },
            Err(e) => {
                eprintln!("cx-obs: warning: skipping snapshot: {e}");
                skipped += 1;
            }
        }
    }
    if skipped > 0 {
        eprintln!(
            "cx-obs: warning: {skipped} of {} snapshot file(s) skipped; \
             the merged view is incomplete",
            paths.len()
        );
    }
    merged.ok_or_else(|| {
        if skipped > 0 {
            format!("all {skipped} snapshot file(s) unusable")
        } else {
            "no snapshot files given".into()
        }
    })
}

/// `doctor`: blame attribution over one report, optionally diffed against
/// a base report's table.
fn doctor(path: &str, args: &[String]) -> ExitCode {
    let rep = match load_report(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cx-obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    let table = rep.blame();
    // Per-op invariants first: a table built from spans that don't sum is
    // not worth printing. Phase accounting, then the blame decomposition
    // itself — every decomposed op's client segments must sum exactly to
    // its client-visible window and its suffix to the commitment window.
    if let Err(e) = rep.validate() {
        eprintln!("cx-obs doctor: span accounting broken: {e}");
        return ExitCode::FAILURE;
    }
    for span in &rep.spans {
        let edges: Vec<&cx_obs::MsgEdge> =
            rep.edges.iter().filter(|e| e.op == Some(span.op)).collect();
        if let Some(b) = blame_span(span, &edges) {
            if let Err(e) = b.check() {
                eprintln!(
                    "cx-obs doctor: blame accounting broken for {}: {e}",
                    span.op
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let against = args
        .iter()
        .position(|a| a == "--against")
        .and_then(|i| args.get(i + 1));
    if let Some(base_path) = against {
        let base = match load_report(base_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cx-obs: {e}");
                return ExitCode::FAILURE;
            }
        };
        let d = blame_diff(&base.blame(), &table);
        if args.iter().any(|a| a == "--json") {
            match serde_json::to_string_pretty(&d) {
                Ok(js) => println!("{js}"),
                Err(e) => {
                    eprintln!("cx-obs: {e:?}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            print!("{}", d.render());
            match d.prime_suspect() {
                Some(s) => println!("prime suspect: {}", s.seg.name()),
                None => println!("prime suspect: none (no significant regression)"),
            }
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", table.to_json());
    } else {
        print!("{}", table.render());
    }
    ExitCode::SUCCESS
}

fn bench_drift(paths: &[String]) -> ExitCode {
    let mut points = Vec::new();
    let mut skipped = 0usize;
    for path in paths {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| format!("read {path}: {e}"))
            .and_then(|text| {
                cx_obs::drift::parse_bench_file(&text, path)
                    .map_err(|e| format!("parse {path}: {e}"))
            });
        match parsed {
            Ok(p) => points.extend(p),
            Err(e) => {
                eprintln!("cx-obs: warning: skipping bench file: {e}");
                skipped += 1;
            }
        }
    }
    if points.is_empty() {
        eprintln!(
            "cx-obs: no usable bench snapshots ({} given, {skipped} skipped); \
             try `cx-obs bench-drift BENCH_PR*.json`",
            paths.len()
        );
        return ExitCode::FAILURE;
    }
    print!("{}", cx_obs::drift::render_drift(&points));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!(
                "usage: cx-obs <report|check|trace|doctor|top|net|bench-drift> \
                 <artifact.json>… [--op <id>] [--against <base.json>] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    if cmd == "top" {
        return match load_merged_snapshots(&args[1..]) {
            Ok(snap) => {
                print!("{}", snap.render_top());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "bench-drift" {
        return bench_drift(&args[1..]);
    }
    if cmd == "doctor" {
        return doctor(path, &args[2..]);
    }
    if cmd == "net" {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cx-obs: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match NetTable::from_json(&text) {
            Ok(table) => {
                print!("{}", table.render());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let rep = match load_report(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cx-obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "report" => {
            print!("{}", rep.render_dashboard());
            ExitCode::SUCCESS
        }
        "check" => match rep.validate() {
            Ok(()) => {
                println!(
                    "ok: {} spans, {} ops, {} message edges, {} wire flushes, \
                     phase accounting sums to client latency",
                    rep.spans.len(),
                    rep.ops_issued,
                    rep.edges.len(),
                    rep.flushes.len(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cx-obs check failed: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => {
            // `--op <id>` switches from the full Perfetto export to the
            // one-op causal chain.
            let op = args
                .iter()
                .position(|a| a == "--op")
                .and_then(|i| args.get(i + 1));
            match op {
                Some(needle) => print!("{}", rep.render_causal(needle)),
                None => print!("{}", rep.to_chrome_trace()),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "cx-obs: unknown command '{other}' \
                 (want report|check|trace|doctor|top|net|bench-drift)"
            );
            ExitCode::from(2)
        }
    }
}
