//! Critical-path extraction over one operation's span + message edges.
//!
//! The doctor's question is "where did this op's latency go?". The span
//! alone answers it at phase granularity (Issued → Dispatched → Executed
//! → Replied); the message edges recorded for the op let us do better: walk
//! the causal chain backwards from the response that ended the op — the
//! last response to arrive at the issuing client *is* the critical path's
//! final hop, its send site names the server whose execution gated the
//! reply, the request edge into that server names the inbound hop, and so
//! on back to the client's first send. Every hop splits into on-node time
//! (the gap between a message arriving at a node and the next critical
//! message leaving it) and wire time (the edge's flight).
//!
//! All chain times are clamped monotone into `[Issued, Replied]`, so the
//! resulting steps are non-negative and sum *exactly* to the client-visible
//! latency by construction — even on shard-merged TCP spans whose stamps
//! carry residual clock error. When an op has no usable causal chain (edge
//! sampling capped out, or a purely local op), the caller falls back to the
//! phase-window decomposition, which carries the same invariant.

use crate::flow::{FlowNode, MsgEdge, MsgKind};
use crate::span::{OpSpan, Phase};

/// Message family from the blame engine's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Data-path request (OP-REQ / SUBOP-REQ).
    Req,
    /// Data-path response (OP-RESP / SUBOP-RESP).
    Resp,
    /// Everything else: vote / decision / ack / migration — commitment and
    /// coordination traffic.
    Commit,
}

/// Classify a message kind for blame purposes.
pub fn edge_class(k: MsgKind) -> EdgeClass {
    match k {
        MsgKind::OpReq | MsgKind::SubOpReq => EdgeClass::Req,
        MsgKind::OpResp | MsgKind::SubOpResp => EdgeClass::Resp,
        _ => EdgeClass::Commit,
    }
}

/// One hop of the critical path: the on-node gap at `from` before the
/// send, then the wire flight. Times are clamped into the op's
/// client-visible window.
#[derive(Debug, Clone, Copy)]
pub struct WalkHop {
    pub kind: MsgKind,
    pub from: FlowNode,
    pub to: FlowNode,
    /// Time spent at `from` between the previous critical arrival (or
    /// `Issued`) and this send.
    pub gap_ns: u64,
    /// Flight time of this edge, clamped.
    pub wire_ns: u64,
    /// Clamped absolute send stamp (for waterfall rendering).
    pub sent_ns: u64,
    pub recv_ns: u64,
}

/// The extracted critical path of one completed op's client-visible
/// window. `sum(gap + wire) + tail == Replied - Issued` always holds.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    pub hops: Vec<WalkHop>,
    /// Client-side time after the final response arrived and before the
    /// `Replied` stamp (delivery/bookkeeping).
    pub tail_ns: u64,
}

impl CriticalPath {
    /// The node the chain starts at (the issuing client when the chain is
    /// complete; a server when edge sampling lost the first hop).
    pub fn root(&self) -> Option<FlowNode> {
        self.hops.first().map(|h| h.from)
    }
}

/// Longest chains we will walk; a backstop against pathological edge sets
/// (duplicated retransmissions chained through shared nodes).
const MAX_HOPS: usize = 64;

/// Walk the causal chain of `span` backwards through `edges` (the op's own
/// edges, any order). Returns `None` when the op has no `Replied` stamp or
/// no response edge into its client — the caller then uses the
/// phase-window fallback.
pub fn critical_path(span: &OpSpan, edges: &[&MsgEdge]) -> Option<CriticalPath> {
    let t0 = span.at(Phase::Issued)?;
    let t3 = span.at(Phase::Replied)?;
    if t3 < t0 {
        return None;
    }
    let client = FlowNode::Client(span.op.proc.client.0);
    // The terminal hop: the last response to reach the issuing client at
    // or before the Replied stamp. (In every runtime the Replied stamp is
    // taken at/after the delivery that carried it, so `recv <= t3`.)
    let (term_idx, term) = edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.to == client && edge_class(e.kind) == EdgeClass::Resp && e.recv_ns <= t3)
        .max_by_key(|(_, e)| (e.recv_ns, e.id))?;
    let mut used = vec![false; edges.len()];
    used[term_idx] = true;
    let mut chain: Vec<usize> = vec![term_idx];
    let mut cur_node = term.from;
    let mut cur_time = term.sent_ns;
    // Backward: the predecessor of a send at node N is the latest arrival
    // at N that precedes it. Stop at a client (chain complete) or when no
    // earlier arrival exists (edge window capped; partial chain).
    while !matches!(cur_node, FlowNode::Client(_)) && chain.len() < MAX_HOPS {
        let pred = edges
            .iter()
            .enumerate()
            .filter(|(i, e)| !used[*i] && e.to == cur_node && e.recv_ns <= cur_time)
            .max_by_key(|(_, e)| (e.recv_ns, e.id));
        let Some((i, e)) = pred else { break };
        used[i] = true;
        chain.push(i);
        cur_node = e.from;
        cur_time = e.sent_ns;
    }
    chain.reverse();
    // Forward pass: clamp every stamp monotone into [t0, t3] so the steps
    // telescope exactly to t3 - t0 regardless of residual clock error.
    let mut t = t0;
    let mut hops = Vec::with_capacity(chain.len());
    for i in chain {
        let e = edges[i];
        let sent = e.sent_ns.clamp(t, t3);
        let recv = e.recv_ns.clamp(sent, t3);
        hops.push(WalkHop {
            kind: e.kind,
            from: e.from,
            to: e.to,
            gap_ns: sent - t,
            wire_ns: recv - sent,
            sent_ns: sent,
            recv_ns: recv,
        });
        t = recv;
    }
    Some(CriticalPath {
        hops,
        tail_ns: t3 - t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::{OpClass, OpId, ProcId, ServerId, SimTime};

    fn op() -> OpId {
        OpId::new(ProcId::new(3, 0), 7)
    }

    fn edge(id: u64, kind: MsgKind, from: FlowNode, to: FlowNode, sent: u64, recv: u64) -> MsgEdge {
        MsgEdge {
            id,
            op: Some(op()),
            kind,
            from,
            to,
            sent_ns: sent,
            recv_ns: recv,
        }
    }

    fn span(issued: u64, replied: u64) -> OpSpan {
        let mut s = OpSpan::new(op(), OpClass::Create, true, SimTime(issued));
        s.stamp(Phase::Dispatched, SimTime(issued + 1), None);
        s.stamp(Phase::Executed, SimTime(replied - 1), Some(ServerId(1)));
        s.stamp(Phase::Replied, SimTime(replied), None);
        s
    }

    #[test]
    fn two_hop_chain_sums_exactly() {
        // c3 --req--> s0 --req--> s1 --resp--> c3
        let edges = [
            edge(
                1,
                MsgKind::OpReq,
                FlowNode::Client(3),
                FlowNode::Server(0),
                100,
                200,
            ),
            edge(
                2,
                MsgKind::SubOpReq,
                FlowNode::Server(0),
                FlowNode::Server(1),
                250,
                400,
            ),
            edge(
                3,
                MsgKind::SubOpResp,
                FlowNode::Server(1),
                FlowNode::Client(3),
                700,
                900,
            ),
        ];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        let s = span(50, 950);
        let cp = critical_path(&s, &refs).unwrap();
        assert_eq!(cp.hops.len(), 3);
        assert_eq!(cp.root(), Some(FlowNode::Client(3)));
        let total: u64 = cp.hops.iter().map(|h| h.gap_ns + h.wire_ns).sum::<u64>() + cp.tail_ns;
        assert_eq!(total, 900);
        // Gaps: 50 at client, 50 at s0, 300 at s1; wires 100, 150, 200;
        // tail 50.
        assert_eq!(cp.hops[0].gap_ns, 50);
        assert_eq!(cp.hops[1].gap_ns, 50);
        assert_eq!(cp.hops[2].gap_ns, 300);
        assert_eq!(cp.tail_ns, 50);
    }

    #[test]
    fn picks_slowest_response_as_terminal() {
        // Fan-out: two participants respond; the later one gates Replied.
        let edges = [
            edge(
                1,
                MsgKind::SubOpReq,
                FlowNode::Client(3),
                FlowNode::Server(0),
                100,
                150,
            ),
            edge(
                2,
                MsgKind::SubOpReq,
                FlowNode::Client(3),
                FlowNode::Server(1),
                100,
                150,
            ),
            edge(
                3,
                MsgKind::SubOpResp,
                FlowNode::Server(0),
                FlowNode::Client(3),
                200,
                260,
            ),
            edge(
                4,
                MsgKind::SubOpResp,
                FlowNode::Server(1),
                FlowNode::Client(3),
                600,
                680,
            ),
        ];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        let cp = critical_path(&span(80, 700), &refs).unwrap();
        // Chain: c3 -> s1 (the slow participant) -> c3.
        assert_eq!(cp.hops.len(), 2);
        assert_eq!(cp.hops[0].to, FlowNode::Server(1));
        assert_eq!(cp.hops[1].gap_ns, 450, "slow participant's execute gap");
    }

    #[test]
    fn clock_skewed_stamps_still_sum() {
        // recv before sent, stamps outside the window: clamping keeps the
        // invariant.
        let edges = [
            edge(
                1,
                MsgKind::OpReq,
                FlowNode::Client(3),
                FlowNode::Server(0),
                40,
                30,
            ),
            edge(
                2,
                MsgKind::OpResp,
                FlowNode::Server(0),
                FlowNode::Client(3),
                20,
                480,
            ),
        ];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        let cp = critical_path(&span(100, 500), &refs).unwrap();
        let total: u64 = cp.hops.iter().map(|h| h.gap_ns + h.wire_ns).sum::<u64>() + cp.tail_ns;
        assert_eq!(total, 400);
    }

    #[test]
    fn no_response_edge_means_no_chain() {
        let edges = [edge(
            1,
            MsgKind::OpReq,
            FlowNode::Client(3),
            FlowNode::Server(0),
            100,
            150,
        )];
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        assert!(critical_path(&span(80, 700), &refs).is_none());
    }
}
