//! Typed metric registry: the fixed schema of Cx-specific counters,
//! gauges and histograms, with Prometheus-text and JSON exposition.
//!
//! The registry is a cheap `Arc` handle over atomic counters, so the
//! threaded runtime's clients and servers can publish concurrently while
//! a monitor thread snapshots it — the HTTP-less live surface behind
//! `cx-obs top` and `--metrics-out`. The DES publishes once, at
//! finalization, from its deterministic [`RunStats`-side] totals; the
//! registry is therefore never consulted by protocol code and cannot
//! perturb a replay (the golden-digest tests pin this).

use crate::hist::{fmt_ns_f, HistSummary, LogHistogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Every counter series the plane exposes. Names follow the Prometheus
/// convention (`*_total` for monotone counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Counter {
    OpsIssued,
    OpsApplied,
    OpsFailed,
    CrossOps,
    Messages,
    ConflictsOrdered,
    ConflictsDisordered,
    HintResolved,
    ImmediateCommitments,
    BatchedCommitments,
    BatchedOps,
    Aborts,
    RecoveryCycles,
    ResumedCommitments,
    WalTruncations,
}

impl Counter {
    pub const COUNT: usize = 15;
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::OpsIssued,
        Counter::OpsApplied,
        Counter::OpsFailed,
        Counter::CrossOps,
        Counter::Messages,
        Counter::ConflictsOrdered,
        Counter::ConflictsDisordered,
        Counter::HintResolved,
        Counter::ImmediateCommitments,
        Counter::BatchedCommitments,
        Counter::BatchedOps,
        Counter::Aborts,
        Counter::RecoveryCycles,
        Counter::ResumedCommitments,
        Counter::WalTruncations,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Counter::OpsIssued => "cx_ops_issued_total",
            Counter::OpsApplied => "cx_ops_applied_total",
            Counter::OpsFailed => "cx_ops_failed_total",
            Counter::CrossOps => "cx_cross_ops_total",
            Counter::Messages => "cx_messages_total",
            Counter::ConflictsOrdered => "cx_conflicts_ordered_total",
            Counter::ConflictsDisordered => "cx_conflicts_disordered_total",
            Counter::HintResolved => "cx_hint_resolved_total",
            Counter::ImmediateCommitments => "cx_immediate_commitments_total",
            Counter::BatchedCommitments => "cx_batched_commitments_total",
            Counter::BatchedOps => "cx_batched_ops_total",
            Counter::Aborts => "cx_aborts_total",
            Counter::RecoveryCycles => "cx_recovery_cycles_total",
            Counter::ResumedCommitments => "cx_resumed_commitments_total",
            Counter::WalTruncations => "cx_wal_truncations_total",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Counter::OpsIssued => "Operations issued by client processes",
            Counter::OpsApplied => "Operations acknowledged Applied",
            Counter::OpsFailed => "Operations acknowledged Failed",
            Counter::CrossOps => "Operations whose sub-ops span two servers",
            Counter::Messages => "Network messages sent",
            Counter::ConflictsOrdered => {
                "Conflicts where both servers saw the executions in the same order"
            }
            Counter::ConflictsDisordered => {
                "Conflicts resolved by invalidating a disordered execution"
            }
            Counter::HintResolved => "Executions released via a conflict hint",
            Counter::ImmediateCommitments => "Commitment rounds launched immediately on conflict",
            Counter::BatchedCommitments => "Lazy (batched) commitment rounds",
            Counter::BatchedOps => "Operations carried by lazy commitment rounds",
            Counter::Aborts => "Cross-server operations aborted",
            Counter::RecoveryCycles => "Crash/recovery cycles completed",
            Counter::ResumedCommitments => "Half-completed commitments resumed from the log",
            Counter::WalTruncations => "WAL tail truncations on crash",
        }
    }
}

/// Instantaneous values (last-write-wins, or high-water via
/// [`MetricRegistry::gauge_max`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gauge {
    WalValidBytes,
    WalPeakValidBytes,
    OpsInFlight,
    WireFramesPerSec,
    WireBytesPerSec,
    WireFlushesPerSec,
}

impl Gauge {
    pub const COUNT: usize = 6;
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::WalValidBytes,
        Gauge::WalPeakValidBytes,
        Gauge::OpsInFlight,
        Gauge::WireFramesPerSec,
        Gauge::WireBytesPerSec,
        Gauge::WireFlushesPerSec,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Gauge::WalValidBytes => "cx_wal_valid_bytes",
            Gauge::WalPeakValidBytes => "cx_wal_peak_valid_bytes",
            Gauge::OpsInFlight => "cx_ops_in_flight",
            Gauge::WireFramesPerSec => "cx_wire_frames_per_sec",
            Gauge::WireBytesPerSec => "cx_wire_bytes_per_sec",
            Gauge::WireFlushesPerSec => "cx_wire_flushes_per_sec",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Gauge::WalValidBytes => "Unpruned log bytes (last sample)",
            Gauge::WalPeakValidBytes => "Peak unpruned log bytes on any server",
            Gauge::OpsInFlight => "Issued operations not yet replied",
            Gauge::WireFramesPerSec => "Wire frames written per second (all peers, last period)",
            Gauge::WireBytesPerSec => "Encoded wire bytes written per second (last period)",
            Gauge::WireFlushesPerSec => {
                "Coalesced write_all flushes per second (frames/flushes = batch size)"
            }
        }
    }
}

/// Histogram series (exposed as Prometheus summaries with fixed
/// quantiles — the underlying [`LogHistogram`] merges exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Series {
    BatchSize,
    BatchAgeNs,
    ClientLatencyNs,
    CommitmentLatencyNs,
    WireQueueDepth,
    WireFlushFrames,
    WireFlushLatencyNs,
    WireCorkScopeNs,
    WireStallNs,
    /// Blame plane (PR 10): critical-path time per coarse segment family.
    BlameIssueQueueNs,
    BlameDispatchNs,
    BlameWireNs,
    BlameExecuteNs,
    BlameCommitOnPathNs,
    BlameCommitOffPathNs,
}

impl Series {
    pub const COUNT: usize = 15;
    pub const ALL: [Series; Series::COUNT] = [
        Series::BatchSize,
        Series::BatchAgeNs,
        Series::ClientLatencyNs,
        Series::CommitmentLatencyNs,
        Series::WireQueueDepth,
        Series::WireFlushFrames,
        Series::WireFlushLatencyNs,
        Series::WireCorkScopeNs,
        Series::WireStallNs,
        Series::BlameIssueQueueNs,
        Series::BlameDispatchNs,
        Series::BlameWireNs,
        Series::BlameExecuteNs,
        Series::BlameCommitOnPathNs,
        Series::BlameCommitOffPathNs,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Series::BatchSize => "cx_commitment_batch_size",
            Series::BatchAgeNs => "cx_commitment_batch_age_ns",
            Series::ClientLatencyNs => "cx_client_latency_ns",
            Series::CommitmentLatencyNs => "cx_commitment_latency_ns",
            Series::WireQueueDepth => "cx_wire_queue_depth",
            Series::WireFlushFrames => "cx_wire_flush_frames",
            Series::WireFlushLatencyNs => "cx_wire_flush_latency_ns",
            Series::WireCorkScopeNs => "cx_wire_cork_scope_ns",
            Series::WireStallNs => "cx_wire_stall_ns",
            Series::BlameIssueQueueNs => "cx_blame_issue_queue_ns",
            Series::BlameDispatchNs => "cx_blame_dispatch_ns",
            Series::BlameWireNs => "cx_blame_wire_ns",
            Series::BlameExecuteNs => "cx_blame_execute_ns",
            Series::BlameCommitOnPathNs => "cx_blame_commit_onpath_ns",
            Series::BlameCommitOffPathNs => "cx_blame_commit_offpath_ns",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Series::BatchSize => "Operations per commitment round (occupancy)",
            Series::BatchAgeNs => "Age of the oldest op when its batch launched",
            Series::ClientLatencyNs => "Client-visible latency (issued to replied)",
            Series::CommitmentLatencyNs => "Commitment latency behind the reply",
            Series::WireQueueDepth => "Outbound frames queued per peer at each flush gather",
            Series::WireFlushFrames => "Frames coalesced into each write_all",
            Series::WireFlushLatencyNs => "Wall time of each coalesced write_all",
            Series::WireCorkScopeNs => "Duration of each scoped sender-side cork",
            Series::WireStallNs => "Sender wall time blocked on a full peer queue",
            Series::BlameIssueQueueNs => "Critical-path client issue queueing per op",
            Series::BlameDispatchNs => "Critical-path coordinator dispatch time per op",
            Series::BlameWireNs => "Critical-path wire transit (request + reply) per op",
            Series::BlameExecuteNs => "Critical-path participant execution per op",
            Series::BlameCommitOnPathNs => "Commitment work the client waited for per op",
            Series::BlameCommitOffPathNs => "Commitment work behind the reply per op",
        }
    }
}

struct RegistryInner {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: Mutex<Vec<LogHistogram>>,
}

/// The shared registry handle. Cloning bumps an `Arc`; counter updates
/// are relaxed atomics, so concurrent publishers merge to exact totals.
#[derive(Clone)]
pub struct MetricRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: Mutex::new(vec![LogHistogram::new(); Series::COUNT]),
            }),
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, delta: u64) {
        self.inner.counters[c.index()].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    pub fn get(&self, c: Counter) -> u64 {
        self.inner.counters[c.index()].load(Ordering::Relaxed)
    }

    pub fn set_gauge(&self, g: Gauge, value: u64) {
        self.inner.gauges[g.index()].store(value, Ordering::Relaxed);
    }

    /// High-water-mark update: keeps the maximum ever set.
    pub fn gauge_max(&self, g: Gauge, value: u64) {
        self.inner.gauges[g.index()].fetch_max(value, Ordering::Relaxed);
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.inner.gauges[g.index()].load(Ordering::Relaxed)
    }

    pub fn observe(&self, s: Series, value: u64) {
        self.inner.hists.lock().expect("registry hists")[s.index()].record(value);
    }

    /// Merge a whole pre-aggregated histogram into a series.
    pub fn observe_hist(&self, s: Series, h: &LogHistogram) {
        self.inner.hists.lock().expect("registry hists")[s.index()].merge(h);
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the maximum (both are run totals / high-water marks here), and
    /// histogram series merge bucket-exactly. This is the partition merge
    /// for parallel DES runs — each partition publishes its own registry
    /// and the coordinator folds them into the one it exposes.
    pub fn merge_from(&self, other: &MetricRegistry) {
        for c in Counter::ALL {
            self.add(c, other.get(c));
        }
        for g in Gauge::ALL {
            self.gauge_max(g, other.gauge(g));
        }
        let theirs = other.inner.hists.lock().expect("registry hists").clone();
        let mut ours = self.inner.hists.lock().expect("registry hists");
        for (h, o) in ours.iter_mut().zip(&theirs) {
            h.merge(o);
        }
    }

    /// A consistent point-in-time copy of every series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hists = self.inner.hists.lock().expect("registry hists").clone();
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| CounterRow {
                    name: c.name().to_string(),
                    help: c.help().to_string(),
                    value: self.get(c),
                })
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| CounterRow {
                    name: g.name().to_string(),
                    help: g.help().to_string(),
                    value: self.gauge(g),
                })
                .collect(),
            series: Series::ALL
                .iter()
                .zip(&hists)
                .map(|(&s, h)| SeriesRow {
                    name: s.name().to_string(),
                    help: s.help().to_string(),
                    summary: h.summary(),
                })
                .collect(),
        }
    }
}

/// One exported scalar row (counter or gauge).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterRow {
    pub name: String,
    pub help: String,
    pub value: u64,
}

/// One exported histogram row, as its fixed-quantile summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesRow {
    pub name: String,
    pub help: String,
    pub summary: HistSummary,
}

/// A serializable snapshot of the registry — what `--metrics-out` writes
/// and `cx-obs top` reads back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterRow>,
    pub gauges: Vec<CounterRow>,
    pub series: Vec<SeriesRow>,
}

impl MetricsSnapshot {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad metrics snapshot: {e:?}"))
    }

    /// Look up a scalar by its exposition name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(&self.gauges)
            .find(|r| r.name == name)
            .map(|r| r.value)
    }

    /// Fold another process's snapshot into this one (multiproc `cx-obs
    /// top`). Counters add by name; gauges add for `_per_sec` rates and
    /// take the max otherwise (depths/occupancies from different
    /// processes don't sum meaningfully). Series rows only carry their
    /// fixed-quantile summaries, so the merge is **approximate**: counts
    /// add, means combine count-weighted, and each quantile takes the
    /// max across inputs (an upper bound — tail-conservative). Rows
    /// present in only one input are kept as-is.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for or in &other.counters {
            match self.counters.iter_mut().find(|r| r.name == or.name) {
                Some(r) => r.value += or.value,
                None => self.counters.push(or.clone()),
            }
        }
        for or in &other.gauges {
            match self.gauges.iter_mut().find(|r| r.name == or.name) {
                Some(r) => {
                    if r.name.contains("_per_sec") {
                        r.value += or.value;
                    } else {
                        r.value = r.value.max(or.value);
                    }
                }
                None => self.gauges.push(or.clone()),
            }
        }
        for os in &other.series {
            match self.series.iter_mut().find(|s| s.name == os.name) {
                Some(s) => {
                    let (a, b) = (&mut s.summary, &os.summary);
                    let total = a.count + b.count;
                    if total > 0 {
                        a.mean_ns = (a.mean_ns * a.count as f64 + b.mean_ns * b.count as f64)
                            / total as f64;
                    }
                    a.count = total;
                    a.min_ns = if a.min_ns == 0 || (b.min_ns > 0 && b.min_ns < a.min_ns) {
                        b.min_ns
                    } else {
                        a.min_ns
                    };
                    a.p50_ns = a.p50_ns.max(b.p50_ns);
                    a.p90_ns = a.p90_ns.max(b.p90_ns);
                    a.p99_ns = a.p99_ns.max(b.p99_ns);
                    a.p999_ns = a.p999_ns.max(b.p999_ns);
                    a.max_ns = a.max_ns.max(b.max_ns);
                }
                None => self.series.push(os.clone()),
            }
        }
    }

    /// Prometheus text exposition (version 0.0.4): counters and gauges as
    /// single samples, histogram series as summaries with fixed quantiles.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for r in &self.counters {
            out.push_str(&format!(
                "# HELP {0} {1}\n# TYPE {0} counter\n{0} {2}\n",
                r.name, r.help, r.value
            ));
        }
        for r in &self.gauges {
            out.push_str(&format!(
                "# HELP {0} {1}\n# TYPE {0} gauge\n{0} {2}\n",
                r.name, r.help, r.value
            ));
        }
        for s in &self.series {
            out.push_str(&format!(
                "# HELP {0} {1}\n# TYPE {0} summary\n",
                s.name, s.help
            ));
            for (q, v) in [
                ("0.5", s.summary.p50_ns),
                ("0.9", s.summary.p90_ns),
                ("0.99", s.summary.p99_ns),
                ("0.999", s.summary.p999_ns),
            ] {
                out.push_str(&format!("{0}{{quantile=\"{q}\"}} {v}\n", s.name));
            }
            out.push_str(&format!(
                "{0}_sum {1}\n{0}_count {2}\n",
                s.name,
                (s.summary.mean_ns * s.summary.count as f64).round() as u64,
                s.summary.count
            ));
        }
        out
    }

    /// The `cx-obs top` dashboard: the protocol-internal quantities the
    /// paper's argument rests on, one screen.
    pub fn render_top(&self) -> String {
        let v = |name: &str| self.value(name).unwrap_or(0);
        let mut out = String::new();
        let issued = v("cx_ops_issued_total");
        let applied = v("cx_ops_applied_total");
        let failed = v("cx_ops_failed_total");
        let cross = v("cx_cross_ops_total");
        out.push_str("== cx metrics ==\n");
        out.push_str(&format!(
            "ops        issued={issued} applied={applied} failed={failed} \
             in-flight={}\n",
            v("cx_ops_in_flight")
        ));
        let pct = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64 * 100.0
            }
        };
        let conflicts = v("cx_conflicts_ordered_total") + v("cx_conflicts_disordered_total");
        out.push_str(&format!(
            "cross      {cross} ({:.1}% of ops), conflicts {conflicts} \
             ({:.2}% of ops, {:.2}% of cross) [ordered {} / disordered {}]\n",
            pct(cross, issued),
            pct(conflicts, issued),
            pct(conflicts, cross),
            v("cx_conflicts_ordered_total"),
            v("cx_conflicts_disordered_total"),
        ));
        out.push_str(&format!(
            "commitment immediate={} batched={} (carrying {} ops) \
             hint-resolved={} aborts={}\n",
            v("cx_immediate_commitments_total"),
            v("cx_batched_commitments_total"),
            v("cx_batched_ops_total"),
            v("cx_hint_resolved_total"),
            v("cx_aborts_total"),
        ));
        out.push_str(&format!(
            "wal        valid={}B peak={}B truncations={}  recovery cycles={} \
             resumed commitments={}\n",
            v("cx_wal_valid_bytes"),
            v("cx_wal_peak_valid_bytes"),
            v("cx_wal_truncations_total"),
            v("cx_recovery_cycles_total"),
            v("cx_resumed_commitments_total"),
        ));
        out.push_str(&format!("messages   {}\n", v("cx_messages_total")));
        let wire_frames = v("cx_wire_frames_per_sec");
        let wire_flushes = v("cx_wire_flushes_per_sec");
        if wire_frames > 0 || wire_flushes > 0 {
            out.push_str(&format!(
                "wire       {wire_frames} frames/s  {} B/s  {wire_flushes} flushes/s \
                 (coalescing {:.1} frames/flush)\n",
                v("cx_wire_bytes_per_sec"),
                if wire_flushes == 0 {
                    0.0
                } else {
                    wire_frames as f64 / wire_flushes as f64
                },
            ));
        }
        for s in &self.series {
            if s.summary.count == 0 {
                continue;
            }
            let is_ns = s.name.ends_with("_ns");
            let f = |x: u64| {
                if is_ns {
                    fmt_ns_f(x as f64)
                } else {
                    x.to_string()
                }
            };
            out.push_str(&format!(
                "  {:<28} n={:<8} mean={:<9} p50={:<9} p90={:<9} p99={:<9} p99.9={}\n",
                s.name,
                s.summary.count,
                if is_ns {
                    fmt_ns_f(s.summary.mean_ns)
                } else {
                    format!("{:.1}", s.summary.mean_ns)
                },
                f(s.summary.p50_ns),
                f(s.summary.p90_ns),
                f(s.summary.p99_ns),
                f(s.summary.p999_ns),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_from_folds_counters_gauges_and_hists() {
        let a = MetricRegistry::new();
        let b = MetricRegistry::new();
        a.add(Counter::OpsIssued, 3);
        b.add(Counter::OpsIssued, 4);
        a.gauge_max(Gauge::OpsInFlight, 10);
        b.gauge_max(Gauge::OpsInFlight, 7);
        a.observe(Series::ClientLatencyNs, 1_000);
        b.observe(Series::ClientLatencyNs, 2_000);
        a.merge_from(&b);
        assert_eq!(a.get(Counter::OpsIssued), 7);
        assert_eq!(a.gauge(Gauge::OpsInFlight), 10);
        let snap = a.snapshot();
        assert_eq!(
            snap.series[Series::ClientLatencyNs.index()].summary.count,
            2
        );
        // b is untouched.
        assert_eq!(b.get(Counter::OpsIssued), 4);
    }

    #[test]
    fn concurrent_increments_merge_exactly() {
        let reg = MetricRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        reg.inc(Counter::OpsIssued);
                        reg.add(Counter::Messages, 3);
                    }
                });
            }
        });
        assert_eq!(reg.get(Counter::OpsIssued), 80_000);
        assert_eq!(reg.get(Counter::Messages), 240_000);
    }

    #[test]
    fn exposition_round_trips() {
        let reg = MetricRegistry::new();
        reg.add(Counter::ConflictsOrdered, 4);
        reg.add(Counter::ConflictsDisordered, 1);
        reg.set_gauge(Gauge::WalValidBytes, 4096);
        reg.gauge_max(Gauge::WalPeakValidBytes, 9000);
        reg.gauge_max(Gauge::WalPeakValidBytes, 100);
        for v in [3u64, 7, 12] {
            reg.observe(Series::BatchSize, v);
        }
        let snap = reg.snapshot();
        let text = snap.to_prometheus_text();
        assert!(text.contains("cx_conflicts_ordered_total 4"));
        assert!(text.contains("cx_conflicts_disordered_total 1"));
        assert!(text.contains("# TYPE cx_wal_valid_bytes gauge"));
        assert!(text.contains("cx_wal_peak_valid_bytes 9000"));
        assert!(text.contains("cx_commitment_batch_size_count 3"));
        assert!(text.contains("cx_commitment_batch_size{quantile=\"0.5\"} 7"));
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.value("cx_conflicts_ordered_total"), Some(4));
        assert_eq!(back.value("cx_wal_valid_bytes"), Some(4096));
        let top = back.render_top();
        assert!(top.contains("conflicts 5"));
        assert!(top.contains("cx_commitment_batch_size"));
    }

    #[test]
    fn wire_gauges_render_in_top() {
        let reg = MetricRegistry::new();
        // No wire traffic → no wire line (DES runs never set these).
        assert!(!reg.snapshot().render_top().contains("frames/s"));
        reg.set_gauge(Gauge::WireFramesPerSec, 1000);
        reg.set_gauge(Gauge::WireBytesPerSec, 64_000);
        reg.set_gauge(Gauge::WireFlushesPerSec, 100);
        let top = reg.snapshot().render_top();
        assert!(top.contains("1000 frames/s"));
        assert!(top.contains("64000 B/s"));
        assert!(top.contains("coalescing 10.0 frames/flush"));
    }

    #[test]
    fn snapshot_merge_is_approximate_but_conservative() {
        let a = MetricRegistry::new();
        let b = MetricRegistry::new();
        a.add(Counter::OpsIssued, 3);
        b.add(Counter::OpsIssued, 4);
        a.set_gauge(Gauge::WireFramesPerSec, 100);
        b.set_gauge(Gauge::WireFramesPerSec, 50);
        a.gauge_max(Gauge::OpsInFlight, 10);
        b.gauge_max(Gauge::OpsInFlight, 7);
        a.observe(Series::WireFlushLatencyNs, 1_000);
        a.observe(Series::WireFlushLatencyNs, 3_000);
        b.observe(Series::WireFlushLatencyNs, 2_000);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.value("cx_ops_issued_total"), Some(7));
        // Rates add, depths take the max.
        assert_eq!(sa.value("cx_wire_frames_per_sec"), Some(150));
        assert_eq!(sa.value("cx_ops_in_flight"), Some(10));
        let s = &sa.series[Series::WireFlushLatencyNs.index()].summary;
        assert_eq!(s.count, 3);
        assert!(s.max_ns >= 3_000);
        assert!(s.min_ns <= 1_100, "min takes the smaller nonzero side");
        // Quantile merge is max-of-inputs: never under-reports the tail.
        assert!(s.p99_ns >= 2_000);
    }

    #[test]
    fn enum_indices_match_all_ordering() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, s) in Series::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
