//! Causal message-edge tracing: every cross-server message becomes a
//! *flow* — a `(from, to, sent, received)` edge tagged with the operation
//! it serves — so the Perfetto trace can draw the VOTE / COMMIT-REQ / ACK
//! exchange as arcs connecting the coordinator's and the participant's
//! tracks, and `cx-obs trace --op` can print one operation's causal chain.
//!
//! Edges are recorded by the runtime at the send site (the DES computes
//! the delivery time there anyway), so the protocol engines stay unaware
//! of the tracing, exactly like the lifecycle spans.

use cx_types::OpId;
use serde::{Deserialize, Serialize};

/// One endpoint of a message edge. A deliberately tiny mirror of the
/// runtime's endpoint type (`cx-protocol` depends on this crate, not the
/// other way around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowNode {
    Server(u32),
    Client(u32),
}

impl FlowNode {
    /// Stable track id inside the messages process of the Chrome trace:
    /// servers keep their id, clients are offset past any realistic
    /// server count.
    pub fn tid(self) -> u32 {
        match self {
            FlowNode::Server(s) => s,
            FlowNode::Client(c) => 10_000 + c,
        }
    }

    pub fn label(self) -> String {
        match self {
            FlowNode::Server(s) => format!("server {s}"),
            FlowNode::Client(c) => format!("client {c}"),
        }
    }
}

impl std::fmt::Display for FlowNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowNode::Server(s) => write!(f, "s{s}"),
            FlowNode::Client(c) => write!(f, "c{c}"),
        }
    }
}

/// Message families the tracer distinguishes, mapped from the runtime's
/// payloads at the send site. Compact and `Copy`, so the always-on flight
/// recorder can stamp one per message without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    OpReq,
    OpResp,
    SubOpReq,
    SubOpResp,
    Vote,
    VoteResult,
    VoteExec,
    CommitDecision,
    Ack,
    Lcom,
    AllNo,
    Committed,
    CommitmentReq,
    Clear,
    ClearResp,
    Migrate,
    MigrateResp,
    MigrateBack,
    MigrateBackAck,
    Query,
    QueryOutcome,
    Other,
}

impl MsgKind {
    pub const COUNT: usize = 22;
    pub const ALL: [MsgKind; MsgKind::COUNT] = [
        MsgKind::OpReq,
        MsgKind::OpResp,
        MsgKind::SubOpReq,
        MsgKind::SubOpResp,
        MsgKind::Vote,
        MsgKind::VoteResult,
        MsgKind::VoteExec,
        MsgKind::CommitDecision,
        MsgKind::Ack,
        MsgKind::Lcom,
        MsgKind::AllNo,
        MsgKind::Committed,
        MsgKind::CommitmentReq,
        MsgKind::Clear,
        MsgKind::ClearResp,
        MsgKind::Migrate,
        MsgKind::MigrateResp,
        MsgKind::MigrateBack,
        MsgKind::MigrateBackAck,
        MsgKind::Query,
        MsgKind::QueryOutcome,
        MsgKind::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MsgKind::OpReq => "OP-REQ",
            MsgKind::OpResp => "OP-RESP",
            MsgKind::SubOpReq => "SUBOP-REQ",
            MsgKind::SubOpResp => "SUBOP-RESP",
            MsgKind::Vote => "VOTE",
            MsgKind::VoteResult => "VOTE-RESULT",
            MsgKind::VoteExec => "VOTE-EXEC",
            MsgKind::CommitDecision => "COMMIT-REQ",
            MsgKind::Ack => "ACK",
            MsgKind::Lcom => "L-COM",
            MsgKind::AllNo => "ALL-NO",
            MsgKind::Committed => "COMMITTED",
            MsgKind::CommitmentReq => "C-REQ",
            MsgKind::Clear => "CLEAR",
            MsgKind::ClearResp => "CLEAR-RESP",
            MsgKind::Migrate => "MIGRATE",
            MsgKind::MigrateResp => "MIGRATE-RESP",
            MsgKind::MigrateBack => "MIGRATE-BACK",
            MsgKind::MigrateBackAck => "MIGRATE-BACK-ACK",
            MsgKind::Query => "QUERY",
            MsgKind::QueryOutcome => "QUERY-OUTCOME",
            MsgKind::Other => "MSG",
        }
    }
}

impl From<cx_types::MsgKind> for MsgKind {
    /// Wire-kind → tracer-kind, so runtimes map a payload with one call.
    fn from(k: cx_types::MsgKind) -> Self {
        use cx_types::MsgKind as W;
        match k {
            W::SubOpReq => MsgKind::SubOpReq,
            W::SubOpResp => MsgKind::SubOpResp,
            W::Vote => MsgKind::Vote,
            W::VoteResult => MsgKind::VoteResult,
            W::CommitReq | W::AbortReq => MsgKind::CommitDecision,
            W::Ack => MsgKind::Ack,
            W::LCom => MsgKind::Lcom,
            W::AllNo => MsgKind::AllNo,
            W::Committed => MsgKind::Committed,
            W::CommitmentReq => MsgKind::CommitmentReq,
            W::QueryOutcome => MsgKind::QueryOutcome,
            W::OpReq => MsgKind::OpReq,
            W::OpResp => MsgKind::OpResp,
            W::Clear => MsgKind::Clear,
            W::ClearResp => MsgKind::ClearResp,
            W::Migrate => MsgKind::Migrate,
            W::MigrateResp => MsgKind::MigrateResp,
            W::MigrateBack => MsgKind::MigrateBack,
            W::MigrateBackAck => MsgKind::MigrateBackAck,
        }
    }
}

/// One recorded message edge. `recv_ns` is the delivery time the runtime
/// scheduled (virtual time under the DES).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MsgEdge {
    /// Flow id shared by the edge's `ph:"s"` / `ph:"f"` trace events.
    pub id: u64,
    /// The operation this message serves (`None` for batch-level traffic
    /// that carries several ops; those edges still draw, untied to a span).
    pub op: Option<OpId>,
    pub kind: MsgKind,
    pub from: FlowNode,
    pub to: FlowNode,
    pub sent_ns: u64,
    pub recv_ns: u64,
}

/// Render `edges` as Chrome-trace events under process `pid`: an in-flight
/// slice on the sender's track, a landing slice on the receiver's track,
/// and an `s`/`f` flow pair (shared `id`) binding the two, which Perfetto
/// draws as an arc.
pub fn chrome_flow_events(edges: &[MsgEdge], pid: u32, ev: &mut Vec<String>) {
    if edges.is_empty() {
        return;
    }
    ev.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"messages\"}}}}"
    ));
    let mut named: Vec<FlowNode> = Vec::new();
    let us = |ns: u64| ns as f64 / 1000.0;
    for e in edges {
        for node in [e.from, e.to] {
            if !named.contains(&node) {
                named.push(node);
                ev.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    node.tid(),
                    node.label(),
                ));
            }
        }
        let op = match &e.op {
            Some(op) => format!("{op}"),
            None => "-".into(),
        };
        let flight_us = us(e.recv_ns.saturating_sub(e.sent_ns)).max(0.001);
        // The in-flight slice anchors the flow start on the sender track.
        ev.push(format!(
            "{{\"name\":\"{} → {}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{flight_us:.3},\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"op\":\"{op}\",\"to\":\"{}\"}}}}",
            e.kind.name(),
            e.to,
            us(e.sent_ns),
            e.from.tid(),
            e.to,
        ));
        // A short landing slice anchors the flow end on the receiver track.
        ev.push(format!(
            "{{\"name\":\"{} ⇐ {}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":1.000,\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"op\":\"{op}\",\"from\":\"{}\"}}}}",
            e.kind.name(),
            e.from,
            us(e.recv_ns),
            e.to.tid(),
            e.from,
        ));
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"ts\":{:.3},\
             \"pid\":{pid},\"tid\":{}}}",
            e.kind.name(),
            e.id,
            us(e.sent_ns),
            e.from.tid(),
        ));
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
             \"ts\":{:.3},\"pid\":{pid},\"tid\":{}}}",
            e.kind.name(),
            e.id,
            us(e.recv_ns),
            e.to.tid(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::ProcId;

    #[test]
    fn flow_events_pair_s_and_f_by_id() {
        let edge = MsgEdge {
            id: 7,
            op: Some(OpId::new(ProcId::new(1, 0), 3)),
            kind: MsgKind::Vote,
            from: FlowNode::Server(0),
            to: FlowNode::Server(2),
            sent_ns: 5_000,
            recv_ns: 9_000,
        };
        let mut ev = Vec::new();
        chrome_flow_events(&[edge], 4, &mut ev);
        let s = ev.iter().filter(|l| l.contains("\"ph\":\"s\"")).count();
        let f = ev.iter().filter(|l| l.contains("\"ph\":\"f\"")).count();
        assert_eq!((s, f), (1, 1));
        assert!(ev.iter().all(|l| serde_json::parse_value(l).is_ok()));
        assert!(ev.iter().any(|l| l.contains("\"id\":7")));
    }

    #[test]
    fn nodes_render_distinct_tracks() {
        assert_ne!(FlowNode::Server(3).tid(), FlowNode::Client(3).tid());
        assert_eq!(FlowNode::Server(3).to_string(), "s3");
        assert_eq!(FlowNode::Client(9).to_string(), "c9");
    }
}
