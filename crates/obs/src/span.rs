//! Per-operation lifecycle spans: the Cx phase model.
//!
//! A cross-server operation under Cx passes through two decoupled paths:
//!
//! ```text
//!  client-visible            Issued → Dispatched → Executed → Replied
//!  commitment (lazy, batched)          Replied → VoteSent → DecisionSent
//!                                              → Acked → Completed
//! ```
//!
//! The client-visible path ends when the process receives its response;
//! the commitment path (VOTE / COMMIT-REQ / ACK / Complete-Record and
//! write-back) runs behind it. SE/2PC/CE finish all their work before the
//! reply, so their post-`Replied` phases stay unset — which is exactly the
//! paper's claim, rendered measurable: Cx is the only protocol whose
//! commitment latency is *excluded* from the client-visible latency.

use cx_types::{OpClass, OpId, OpOutcome, ServerId, SimTime};
use serde::{Deserialize, Serialize};

/// One lifecycle milestone of an operation. Order matters: stamps must be
/// non-decreasing along the enum for the client-visible prefix, and the
/// exporters rely on `index()` for the per-phase arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// The process issued the operation (client runtime).
    Issued,
    /// First sub-op request left the client.
    Dispatched,
    /// A server executed its sub-op and sent the result back.
    Executed,
    /// The process received its final response (client-visible end).
    Replied,
    /// The coordinator launched the commitment batch (VOTE sent).
    VoteSent,
    /// The coordinator logged the decision and sent COMMIT-REQ/ABORT-REQ.
    DecisionSent,
    /// The participant acknowledged the decision.
    Acked,
    /// The coordinator's Complete-Record is durable and the op is pruned
    /// (write-back rides the following flush).
    Completed,
}

impl Phase {
    pub const COUNT: usize = 8;
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Issued,
        Phase::Dispatched,
        Phase::Executed,
        Phase::Replied,
        Phase::VoteSent,
        Phase::DecisionSent,
        Phase::Acked,
        Phase::Completed,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Issued => "issued",
            Phase::Dispatched => "dispatched",
            Phase::Executed => "executed",
            Phase::Replied => "replied",
            Phase::VoteSent => "vote-sent",
            Phase::DecisionSent => "decision-sent",
            Phase::Acked => "acked",
            Phase::Completed => "completed",
        }
    }
}

/// Virtual-time stamps of one operation's lifecycle. `u64::MAX` marks an
/// unreached phase (0 is a legal virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSpan {
    pub op: OpId,
    pub class: OpClass,
    pub cross: bool,
    pub outcome: Option<OpOutcome>,
    /// Stamp per phase, `u64::MAX` = never reached. First writer wins
    /// (retransmissions and re-driven batches must not move a milestone).
    pub at_ns: [u64; Phase::COUNT],
    /// Server that stamped the phase (`u32::MAX` = client side / unset).
    pub server: [u32; Phase::COUNT],
}

pub(crate) const UNSET: u64 = u64::MAX;
pub(crate) const NO_SERVER: u32 = u32::MAX;

impl OpSpan {
    pub fn new(op: OpId, class: OpClass, cross: bool, issued: SimTime) -> Self {
        let mut s = Self {
            op,
            class,
            cross,
            outcome: None,
            at_ns: [UNSET; Phase::COUNT],
            server: [NO_SERVER; Phase::COUNT],
        };
        s.at_ns[Phase::Issued.index()] = issued.0;
        s
    }

    /// Record `phase` at `at` unless already stamped.
    pub fn stamp(&mut self, phase: Phase, at: SimTime, server: Option<ServerId>) {
        let i = phase.index();
        if self.at_ns[i] == UNSET {
            self.at_ns[i] = at.0;
            if let Some(s) = server {
                self.server[i] = s.0;
            }
        }
    }

    pub fn at(&self, phase: Phase) -> Option<u64> {
        let v = self.at_ns[phase.index()];
        (v != UNSET).then_some(v)
    }

    /// Issued → Replied, the latency the process observed.
    pub fn client_visible_ns(&self) -> Option<u64> {
        Some(
            self.at(Phase::Replied)?
                .saturating_sub(self.at(Phase::Issued)?),
        )
    }

    /// Replied → Completed: commitment work that ran *after* the client
    /// already had its answer. `Some(0)` when the commitment finished
    /// before the reply arrived (immediate commitment).
    pub fn commitment_ns(&self) -> Option<u64> {
        Some(
            self.at(Phase::Completed)?
                .saturating_sub(self.at(Phase::Replied)?),
        )
    }

    /// Every phase reached, in order.
    pub fn reached(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .iter()
            .filter_map(|&p| self.at(p).map(|t| (p, t)))
    }

    /// The latest phase reached (spans always have `Issued`).
    pub fn last_phase(&self) -> Phase {
        let mut last = Phase::Issued;
        for p in Phase::ALL {
            if self.at(p).is_some() {
                last = p;
            }
        }
        last
    }

    /// The client-visible prefix must be stamped in order, and consecutive
    /// segment durations must sum exactly to the client-visible latency
    /// (phase accounting). Returns a description of the first violation.
    pub fn check_accounting(&self) -> Result<(), String> {
        let prefix = [
            Phase::Issued,
            Phase::Dispatched,
            Phase::Executed,
            Phase::Replied,
        ];
        let mut prev: Option<(Phase, u64)> = None;
        let mut segment_sum = 0u64;
        for p in prefix {
            let Some(t) = self.at(p) else { continue };
            if let Some((pp, pt)) = prev {
                if t < pt {
                    return Err(format!(
                        "{}: {} at {t} precedes {} at {pt}",
                        self.op,
                        p.name(),
                        pp.name()
                    ));
                }
                segment_sum += t - pt;
            }
            prev = Some((p, t));
        }
        if let Some(total) = self.client_visible_ns() {
            if segment_sum != total {
                return Err(format!(
                    "{}: segments sum to {segment_sum} but client latency is {total}",
                    self.op
                ));
            }
        }
        Ok(())
    }
}

/// A structured hang diagnostic: which operation is stuck, in which phase,
/// on which server, since when. Replaces grepping the free-text
/// `RunStats::leftovers` strings for the stalled Cx phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StuckOp {
    pub op: OpId,
    /// The last lifecycle phase the operation reached.
    pub phase: Phase,
    /// Server last seen acting on the op (`None` = client side).
    pub server: Option<ServerId>,
    /// When the op entered that phase.
    pub since: SimTime,
}

impl std::fmt::Display for StuckOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} stuck after {}", self.op, self.phase.name())?;
        if let Some(s) = self.server {
            write!(f, " on server {}", s.0)?;
        }
        write!(f, " since {}", self.since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::ProcId;

    fn op(seq: u64) -> OpId {
        OpId::new(ProcId::new(0, 0), seq)
    }

    #[test]
    fn stamps_are_first_writer_wins() {
        let mut s = OpSpan::new(op(1), OpClass::Create, true, SimTime(100));
        s.stamp(Phase::Dispatched, SimTime(110), None);
        s.stamp(Phase::Dispatched, SimTime(999), None);
        assert_eq!(s.at(Phase::Dispatched), Some(110));
        assert_eq!(s.at(Phase::Replied), None);
        assert_eq!(s.last_phase(), Phase::Dispatched);
    }

    #[test]
    fn latency_split() {
        let mut s = OpSpan::new(op(2), OpClass::Mkdir, true, SimTime(1000));
        s.stamp(Phase::Dispatched, SimTime(1010), None);
        s.stamp(Phase::Executed, SimTime(1200), Some(ServerId(3)));
        s.stamp(Phase::Replied, SimTime(1500), None);
        s.stamp(Phase::VoteSent, SimTime(5000), Some(ServerId(3)));
        s.stamp(Phase::Completed, SimTime(9000), Some(ServerId(3)));
        assert_eq!(s.client_visible_ns(), Some(500));
        assert_eq!(s.commitment_ns(), Some(7500));
        assert!(s.check_accounting().is_ok());
        assert_eq!(s.server[Phase::Executed.index()], 3);
    }

    #[test]
    fn accounting_rejects_disorder() {
        let mut s = OpSpan::new(op(3), OpClass::Link, true, SimTime(1000));
        s.at_ns[Phase::Dispatched.index()] = 900; // earlier than Issued
        s.at_ns[Phase::Replied.index()] = 1100;
        assert!(s.check_accounting().is_err());
    }

    #[test]
    fn immediate_commitment_clamps_to_zero() {
        let mut s = OpSpan::new(op(4), OpClass::Remove, true, SimTime(0));
        s.stamp(Phase::Replied, SimTime(500), None);
        s.at_ns[Phase::Completed.index()] = 400; // completed before reply
        assert_eq!(s.commitment_ns(), Some(0));
    }

    #[test]
    fn stuck_op_renders() {
        let st = StuckOp {
            op: op(9),
            phase: Phase::VoteSent,
            server: Some(ServerId(2)),
            since: SimTime(42),
        };
        let text = st.to_string();
        assert!(text.contains("vote-sent") && text.contains("server 2"));
    }
}
