//! Crash flight recorder: a fixed-size ring of the most recent protocol
//! events, always on — even when the histogram sink is `Off` — so a
//! post-mortem exists the moment chaos detects a crash, a stuck op, or a
//! digest/oracle mismatch. The last few thousand events before the
//! failure are exactly the ones a distributed-protocol bug hides in.
//!
//! Events are tiny `Copy` records (no strings, no per-event allocation);
//! pushing into a pre-sized ring is two index ops and a store behind a
//! mutex, cheap enough to leave on for every benchmarked run.

use crate::flow::{FlowNode, MsgKind};
use crate::span::Phase;
use cx_types::OpId;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// What the recorder remembers. One variant per event family the
/// post-mortem needs to reconstruct "what was the cluster doing".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlightEvent {
    /// A message delivery (stamped at the send site with its scheduled
    /// arrival, like the flow tracer).
    Msg {
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        recv_ns: u64,
    },
    Issued {
        op: OpId,
        cross: bool,
    },
    Replied {
        op: OpId,
        applied: bool,
    },
    Phase {
        op: OpId,
        phase: Phase,
        server: u32,
    },
    Crash {
        server: u32,
    },
    Recovered {
        server: u32,
    },
    Stuck {
        op: OpId,
        phase: Phase,
    },
}

/// A ring entry: the event plus when it happened and a global sequence
/// number (so a wrapped ring still reads in true order).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    pub at_ns: u64,
    pub seq: u64,
    pub ev: FlightEvent,
}

struct Ring {
    buf: Vec<TimedEvent>,
    cap: usize,
    next: usize,
    seq: u64,
}

/// The recorder handle. Cloning shares the ring; the runtime holds one
/// clone, the chaos driver holds another to dump on failure.
#[derive(Clone)]
pub struct FlightRecorder {
    ring: Arc<Mutex<Ring>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAP)
    }
}

impl FlightRecorder {
    pub const DEFAULT_CAP: usize = 4096;

    pub fn new(cap: usize) -> Self {
        Self {
            ring: Arc::new(Mutex::new(Ring {
                buf: Vec::with_capacity(cap.max(1)),
                cap: cap.max(1),
                next: 0,
                seq: 0,
            })),
        }
    }

    #[inline]
    pub fn push(&self, at_ns: u64, ev: FlightEvent) {
        let mut r = self.ring.lock().expect("flight ring");
        let seq = r.seq;
        r.seq += 1;
        let entry = TimedEvent { at_ns, seq, ev };
        if r.buf.len() < r.cap {
            r.buf.push(entry);
        } else {
            let slot = r.next;
            r.buf[slot] = entry;
        }
        r.next = (r.next + 1) % r.cap;
    }

    /// Total events ever pushed (retained or overwritten).
    pub fn total(&self) -> u64 {
        self.ring.lock().expect("flight ring").seq
    }

    /// The retained window, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let r = self.ring.lock().expect("flight ring");
        let mut out = Vec::with_capacity(r.buf.len());
        if r.buf.len() == r.cap {
            out.extend_from_slice(&r.buf[r.next..]);
            out.extend_from_slice(&r.buf[..r.next]);
        } else {
            out.extend_from_slice(&r.buf);
        }
        out
    }

    /// One JSON object per line, oldest first — greppable post-mortem.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&serde_json::to_string(&e).expect("flight event serializes"));
            out.push('\n');
        }
        out
    }

    /// A self-contained Chrome trace of the retained window: message
    /// edges as flow arcs (process 4, like the live trace) and the
    /// lifecycle/crash events as instants on a timeline process.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.events();
        let mut ev: Vec<String> = Vec::new();
        let us = |ns: u64| ns as f64 / 1000.0;
        ev.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"flight recorder\"}}"
                .to_string(),
        );
        let mut edges = Vec::new();
        for (i, t) in events.iter().enumerate() {
            match t.ev {
                FlightEvent::Msg {
                    kind,
                    from,
                    to,
                    recv_ns,
                } => edges.push(crate::flow::MsgEdge {
                    id: i as u64 + 1,
                    op: None,
                    kind,
                    from,
                    to,
                    sent_ns: t.at_ns,
                    recv_ns,
                }),
                other => {
                    let (name, scope) = match other {
                        FlightEvent::Issued { op, cross } => {
                            (format!("issued {op}{}", if cross { " ×" } else { "" }), "t")
                        }
                        FlightEvent::Replied { op, applied } => (
                            format!("replied {op} {}", if applied { "ok" } else { "failed" }),
                            "t",
                        ),
                        FlightEvent::Phase { op, phase, server } => {
                            (format!("{phase:?} {op} @s{server}"), "t")
                        }
                        FlightEvent::Crash { server } => (format!("CRASH s{server}"), "g"),
                        FlightEvent::Recovered { server } => (format!("RECOVERED s{server}"), "g"),
                        FlightEvent::Stuck { op, phase } => {
                            (format!("STUCK {op} at {phase:?}"), "g")
                        }
                        FlightEvent::Msg { .. } => unreachable!(),
                    };
                    let tid = match other {
                        FlightEvent::Phase { server, .. }
                        | FlightEvent::Crash { server }
                        | FlightEvent::Recovered { server } => server,
                        _ => 0,
                    };
                    ev.push(format!(
                        "{{\"name\":\"{name}\",\"cat\":\"flight\",\"ph\":\"i\",\
                         \"s\":\"{scope}\",\"ts\":{:.3},\"pid\":1,\"tid\":{tid}}}",
                        us(t.at_ns),
                    ));
                }
            }
        }
        crate::flow::chrome_flow_events(&edges, 4, &mut ev);
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
            ev.join(",\n")
        )
    }

    /// Write the post-mortem pair: `<prefix>.flight.jsonl` and
    /// `<prefix>.flight.trace.json`. Returns the two paths.
    pub fn dump_to(&self, prefix: &str) -> std::io::Result<(String, String)> {
        let jsonl = format!("{prefix}.flight.jsonl");
        let trace = format!("{prefix}.flight.trace.json");
        std::fs::write(&jsonl, self.to_jsonl())?;
        std::fs::write(&trace, self.to_chrome_trace())?;
        Ok((jsonl, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::ProcId;

    fn op(n: u64) -> OpId {
        OpId::new(ProcId::new(1, 0), n)
    }

    #[test]
    fn ring_wraps_and_reads_in_order() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(
                i * 100,
                FlightEvent::Issued {
                    op: op(i),
                    cross: false,
                },
            );
        }
        assert_eq!(fr.total(), 10);
        let evs = fr.events();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(evs.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn chrome_trace_contains_flow_arcs_and_instants() {
        let fr = FlightRecorder::new(16);
        fr.push(
            1_000,
            FlightEvent::Issued {
                op: op(1),
                cross: true,
            },
        );
        fr.push(
            2_000,
            FlightEvent::Msg {
                kind: MsgKind::Vote,
                from: FlowNode::Server(0),
                to: FlowNode::Server(1),
                recv_ns: 3_000,
            },
        );
        fr.push(4_000, FlightEvent::Crash { server: 1 });
        fr.push(
            5_000,
            FlightEvent::Stuck {
                op: op(1),
                phase: Phase::VoteSent,
            },
        );
        let trace = fr.to_chrome_trace();
        assert!(serde_json::parse_value(&trace).is_ok(), "trace parses");
        assert!(trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""));
        assert!(trace.contains("CRASH s1"));
        assert!(trace.contains("STUCK"));
        let jsonl = fr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            assert!(serde_json::parse_value(line).is_ok());
        }
    }
}
