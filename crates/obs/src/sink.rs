//! The collector: an enum sink that is a no-op when disabled.
//!
//! Runtimes and engines hold an [`ObsSink`] by value. `ObsSink::Off` is a
//! unit variant, so every emission call is a single discriminant branch
//! and returns immediately — the instrumented hot path costs nothing when
//! observability is off, and recording never schedules events or touches
//! protocol state, so golden digests are identical either way (pinned by
//! `tests/observability.rs`). `ObsSink::On` wraps the recorder in
//! `Arc<Mutex<…>>` so the same sink type serves the single-threaded DES
//! and the threaded runtime.

use crate::flow::{FlowNode, MsgEdge, MsgKind};
use crate::hist::LogHistogram;
use crate::report::ObsReport;
use crate::span::{OpSpan, Phase, StuckOp};
use cx_types::{FxHashMap, OpClass, OpId, OpOutcome, ServerId, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// What the recorder keeps in detail. Histograms always cover *every*
/// operation; full spans (for the Perfetto trace) are kept for a sampled
/// window so memory stays bounded on full-scale replays.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Keep a full span for every `sample_every`-th issued op…
    pub sample_every: u64,
    /// …up to this many spans in total.
    pub max_spans: usize,
    /// Cap on stored gauge samples (oldest kept; the run start is the
    /// interesting window once the cap is hit).
    pub max_gauges: usize,
    /// Cap on stored message edges (the causal flow arcs in the Perfetto
    /// trace; oldest kept, like gauges).
    pub max_edges: usize,
    /// Shard mode: this recorder lives in a child process that never sees
    /// `op_issued` (the client runs elsewhere), so a phase stamp for an
    /// unknown op *creates* its span — a partial span shard the
    /// coordinator later merges with [`Recorder::absorb_shard`]. Off for
    /// the coordinator itself, where an unknown op means "not sampled".
    pub shard_mode: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            sample_every: 1,
            max_spans: 20_000,
            max_gauges: 100_000,
            max_edges: 50_000,
            shard_mode: false,
        }
    }
}

/// A virtual-time-sampled scalar, per server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GaugeKind {
    /// Objects modified by pending (uncommitted) operations.
    ActiveObjects,
    /// Unpruned log bytes.
    ValidLogBytes,
    /// Ops queued for, or riding in, commitment batches.
    PendingBatchOps,
    /// CPU queue backlog in nanoseconds (busy-until minus now).
    QueueBacklogNs,
}

impl GaugeKind {
    pub const ALL: [GaugeKind; 4] = [
        GaugeKind::ActiveObjects,
        GaugeKind::ValidLogBytes,
        GaugeKind::PendingBatchOps,
        GaugeKind::QueueBacklogNs,
    ];

    pub fn name(self) -> &'static str {
        match self {
            GaugeKind::ActiveObjects => "active_objects",
            GaugeKind::ValidLogBytes => "valid_log_bytes",
            GaugeKind::PendingBatchOps => "pending_batch_ops",
            GaugeKind::QueueBacklogNs => "queue_backlog_ns",
        }
    }
}

/// One gauge observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    pub at: SimTime,
    pub server: u32,
    pub kind: GaugeKind,
    pub value: u64,
}

/// Engine-reported instantaneous state, polled by the runtime on the
/// sampling cadence. Every protocol fills in what it has; zeros are fine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineGauges {
    /// Active objects (Cx §III-B) or the closest analogue.
    pub active_objects: u64,
    /// Ops awaiting a lazy batch plus ops inside in-flight batches.
    pub pending_batch_ops: u64,
}

/// Minimal per-op state kept for *every* in-flight op (16 bytes of
/// payload), enough for commitment-latency histograms and stuck-op
/// diagnostics without storing full spans.
#[derive(Debug, Clone, Copy)]
struct LiveOp {
    phase: Phase,
    at: SimTime,
    server: u32,
    replied_at: u64,
    cross: bool,
}

/// The shared collector behind `ObsSink::On`.
#[derive(Debug, Default)]
pub struct Recorder {
    cfg: ObsConfig,
    pub protocol: String,

    // -------- histograms over every op --------
    pub client_all: LogHistogram,
    pub client_cross: LogHistogram,
    pub client_local: LogHistogram,
    /// Replied → Completed, cross ops only (the paper's decoupled path).
    pub commitment: LogHistogram,
    pub client_by_class: Vec<LogHistogram>,

    // -------- sampled span window --------
    spans: FxHashMap<OpId, OpSpan>,
    span_order: Vec<OpId>,
    issued_seen: u64,

    // -------- live tracking of all in-flight ops --------
    live: FxHashMap<OpId, LiveOp>,

    // -------- causal message edges --------
    pub edges: Vec<MsgEdge>,
    next_edge_id: u64,
    dropped_edges: u64,

    // -------- gauges & diagnostics --------
    pub gauges: Vec<GaugeSample>,
    pub stuck: Vec<StuckOp>,
    dropped_spans: u64,
    dropped_gauges: u64,
}

impl Recorder {
    pub fn new(protocol: impl Into<String>, cfg: ObsConfig) -> Self {
        Self {
            cfg,
            protocol: protocol.into(),
            client_by_class: vec![LogHistogram::new(); OpClass::COUNT],
            ..Self::default()
        }
    }

    fn class_index(class: OpClass) -> usize {
        class.index()
    }

    fn issued(&mut self, op: OpId, class: OpClass, cross: bool, at: SimTime) {
        self.live.insert(
            op,
            LiveOp {
                phase: Phase::Issued,
                at,
                server: u32::MAX,
                replied_at: u64::MAX,
                cross,
            },
        );
        let sampled = self.issued_seen.is_multiple_of(self.cfg.sample_every)
            && self.spans.len() < self.cfg.max_spans;
        self.issued_seen += 1;
        if sampled {
            self.spans.insert(op, OpSpan::new(op, class, cross, at));
            self.span_order.push(op);
        } else {
            self.dropped_spans += 1;
        }
    }

    fn phase(&mut self, op: OpId, phase: Phase, at: SimTime, server: Option<ServerId>) {
        if let Some(live) = self.live.get_mut(&op) {
            if phase > live.phase {
                live.phase = phase;
                live.at = at;
                if let Some(s) = server {
                    live.server = s.0;
                }
            }
            if phase == Phase::Completed {
                let live = self.live.remove(&op).expect("just fetched");
                if live.replied_at != u64::MAX && live.cross {
                    self.commitment.record(at.0.saturating_sub(live.replied_at));
                }
            }
        }
        if let Some(span) = self.spans.get_mut(&op) {
            span.stamp(phase, at, server);
        } else if self.cfg.shard_mode && self.spans.len() < self.cfg.max_spans {
            // Child-process shard: first stamp creates the span. Class
            // and cross are placeholders — the coordinator's own span
            // carries the real ones; only the stamps travel.
            let mut span = OpSpan::new(op, OpClass::Create, false, SimTime(0));
            span.at_ns[Phase::Issued.index()] = crate::span::UNSET;
            span.stamp(phase, at, server);
            self.spans.insert(op, span);
            self.span_order.push(op);
        }
    }

    fn replied(&mut self, op: OpId, at: SimTime, outcome: OpOutcome, awaits_commitment: bool) {
        if awaits_commitment {
            if let Some(live) = self.live.get_mut(&op) {
                if Phase::Replied > live.phase {
                    live.phase = Phase::Replied;
                    live.at = at;
                }
                live.replied_at = at.0;
            }
        } else {
            self.live.remove(&op);
        }
        if let Some(span) = self.spans.get_mut(&op) {
            span.stamp(Phase::Replied, at, None);
            span.outcome = Some(outcome);
        }
    }

    /// Client latency histograms are fed directly by the runtime (it
    /// already computes the latency for `RunStats`), so the recorder does
    /// not need to track issue stamps for unsampled ops.
    fn client_latency(&mut self, class: OpClass, cross: bool, latency_ns: u64) {
        self.client_all.record(latency_ns);
        if cross {
            self.client_cross.record(latency_ns);
        } else {
            self.client_local.record(latency_ns);
        }
        self.client_by_class[Self::class_index(class)].record(latency_ns);
    }

    fn gauge(&mut self, sample: GaugeSample) {
        if self.gauges.len() < self.cfg.max_gauges {
            self.gauges.push(sample);
        } else {
            self.dropped_gauges += 1;
        }
    }

    fn msg_edge(
        &mut self,
        op: Option<OpId>,
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        sent_ns: u64,
        recv_ns: u64,
    ) {
        self.next_edge_id += 1;
        if self.edges.len() < self.cfg.max_edges {
            self.edges.push(MsgEdge {
                id: self.next_edge_id,
                op,
                kind,
                from,
                to,
                sent_ns,
                recv_ns,
            });
        } else {
            self.dropped_edges += 1;
        }
    }

    /// Structured hang diagnostics for every op still in flight: derived
    /// from the live map, so it names the exact stalled phase even for
    /// ops outside the sampled span window.
    pub fn stuck_report(&mut self) -> Vec<StuckOp> {
        let mut v: Vec<StuckOp> = self
            .live
            .iter()
            .filter(|(_, l)| l.phase < Phase::Replied)
            .map(|(&op, l)| StuckOp {
                op,
                phase: l.phase,
                server: (l.server != u32::MAX).then_some(ServerId(l.server)),
                since: l.at,
            })
            .collect();
        v.sort_by_key(|s| (s.since, s.op));
        self.stuck = v.clone();
        v
    }

    /// The sampled spans, in issue order.
    pub fn spans(&self) -> Vec<OpSpan> {
        self.span_order
            .iter()
            .filter_map(|op| self.spans.get(op).copied())
            .collect()
    }

    /// Merge a child process's span shard (see [`ObsConfig::shard_mode`])
    /// into this coordinator recorder. `offset_ns` is the shard process's
    /// clock-offset estimate (its clock minus ours, from the wire plane's
    /// probe RTT sampler): every shard stamp is pulled onto our clock, then
    /// clamped so corrected stamps stay monotone along the phase order —
    /// offset error up to ± RTT/2 must never produce a span that fails
    /// [`OpSpan::check_accounting`]. Coordinator-recorded stamps always
    /// win (first-writer-wins via [`OpSpan::stamp`]); ops the coordinator
    /// never saw issued are skipped entirely unless they are still in its
    /// live map (commitment accounting for unsampled ops).
    pub fn absorb_shard(&mut self, shard: &[OpSpan], offset_ns: i64) {
        let correct = |ns: u64| (ns as i128 - offset_ns as i128).clamp(0, u64::MAX as i128) as u64;
        for s in shard {
            if !self.spans.contains_key(&s.op) && !self.live.contains_key(&s.op) {
                continue;
            }
            // Coordinator stamps are causal ground truth for the shard's:
            // a server-side milestone happened after every coordinator
            // stamp that precedes it in phase order and before every one
            // that follows (the message carrying it was still in flight).
            // `cap[i]` is the earliest coordinator stamp at a phase ≥ i,
            // so a corrected shard stamp — good only to ±rtt/2 — gets
            // pinned inside its causal interval, not just clamped from
            // below.
            let mut cap = [u64::MAX; Phase::COUNT];
            if let Some(sp) = self.spans.get(&s.op) {
                let mut next = u64::MAX;
                for ph in Phase::ALL.iter().rev() {
                    if let Some(t) = sp.at(*ph) {
                        next = next.min(t);
                    }
                    cap[ph.index()] = next;
                }
            }
            // `prev` tracks the latest stamp seen walking the phases in
            // order — existing coordinator stamps and corrected shard
            // stamps alike — so each new stamp is clamped monotone.
            let mut prev = 0u64;
            for ph in Phase::ALL {
                if let Some(t) = self.spans.get(&s.op).and_then(|sp| sp.at(ph)) {
                    prev = prev.max(t);
                    continue;
                }
                let Some(raw) = s.at(ph) else { continue };
                let at = correct(raw).max(prev).min(cap[ph.index()].max(prev));
                let server = (s.server[ph.index()] != crate::span::NO_SERVER)
                    .then(|| ServerId(s.server[ph.index()]));
                self.phase(s.op, ph, SimTime(at), server);
                prev = at;
            }
        }
    }

    /// Merge a child process's message edges, offset-corrected like
    /// [`Self::absorb_shard`] (flight times are cross-clock one-way spans
    /// — exactly what the offset estimate exists for). Edges get fresh
    /// ids so flow arcs from different shards never collide.
    pub fn absorb_edges(&mut self, edges: &[MsgEdge], offset_ns: i64) {
        let correct = |ns: u64| (ns as i128 - offset_ns as i128).clamp(0, u64::MAX as i128) as u64;
        for e in edges {
            let sent = correct(e.sent_ns);
            self.msg_edge(
                e.op,
                e.kind,
                e.from,
                e.to,
                sent,
                correct(e.recv_ns).max(sent),
            );
        }
    }

    /// Snapshot everything into the exportable report.
    pub fn report(&self) -> ObsReport {
        ObsReport::from_recorder(self)
    }

    /// Decompose every sampled span's latency into blame segments (see
    /// [`crate::blame`]). Call after shards have been absorbed so the
    /// table covers the stitched, offset-corrected plane.
    pub fn blame_table(&self) -> crate::blame::BlameTable {
        crate::blame::BlameTable::from_spans(&self.protocol, &self.spans(), &self.edges)
    }

    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    pub fn dropped_edges(&self) -> u64 {
        self.dropped_edges
    }
}

/// The sink handed to runtimes and engines. Cloning is cheap (`Off` is a
/// unit; `On` bumps an `Arc`).
#[derive(Clone, Default)]
pub enum ObsSink {
    /// Recording disabled: every call returns immediately.
    #[default]
    Off,
    /// Recording into a shared [`Recorder`].
    On(Arc<Mutex<Recorder>>),
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsSink::Off => write!(f, "ObsSink::Off"),
            ObsSink::On(_) => write!(f, "ObsSink::On"),
        }
    }
}

impl ObsSink {
    /// A recording sink with the default sampling window.
    pub fn recording(protocol: impl Into<String>) -> Self {
        Self::with_config(protocol, ObsConfig::default())
    }

    pub fn with_config(protocol: impl Into<String>, cfg: ObsConfig) -> Self {
        ObsSink::On(Arc::new(Mutex::new(Recorder::new(protocol, cfg))))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, ObsSink::On(_))
    }

    #[inline]
    fn with(&self, f: impl FnOnce(&mut Recorder)) {
        if let ObsSink::On(rec) = self {
            f(&mut rec.lock().expect("obs recorder poisoned"));
        }
    }

    /// An operation was issued by its process.
    #[inline]
    pub fn op_issued(&self, op: OpId, class: OpClass, cross: bool, at: SimTime) {
        self.with(|r| r.issued(op, class, cross, at));
    }

    /// A lifecycle milestone was reached.
    #[inline]
    pub fn op_phase(&self, op: OpId, phase: Phase, at: SimTime, server: Option<ServerId>) {
        self.with(|r| r.phase(op, phase, at, server));
    }

    /// The process received its final response. `awaits_commitment` keeps
    /// the op live until [`Phase::Completed`] (Cx cross ops); all other
    /// protocols finish everything before the reply.
    #[inline]
    pub fn op_replied(&self, op: OpId, at: SimTime, outcome: OpOutcome, awaits_commitment: bool) {
        self.with(|r| r.replied(op, at, outcome, awaits_commitment));
    }

    /// Feed the client-visible latency (the runtime computes it anyway).
    #[inline]
    pub fn client_latency(&self, class: OpClass, cross: bool, latency_ns: u64) {
        self.with(|r| r.client_latency(class, cross, latency_ns));
    }

    /// Record a cross-server message edge: `kind` sent `from → to` at
    /// `sent_ns`, delivered at `recv_ns`. The runtime calls this at the
    /// send site (the DES schedules the delivery time there anyway).
    #[inline]
    pub fn msg_edge(
        &self,
        op: Option<OpId>,
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        sent_ns: u64,
        recv_ns: u64,
    ) {
        self.with(|r| r.msg_edge(op, kind, from, to, sent_ns, recv_ns));
    }

    /// Record a gauge observation.
    #[inline]
    pub fn gauge(&self, at: SimTime, server: u32, kind: GaugeKind, value: u64) {
        self.with(|r| {
            r.gauge(GaugeSample {
                at,
                server,
                kind,
                value,
            })
        });
    }

    /// Snapshot the exportable report (None when the sink is off).
    pub fn report(&self) -> Option<ObsReport> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(rec) => Some(rec.lock().expect("obs recorder poisoned").report()),
        }
    }

    /// The aggregated blame table over the sampled spans (None when off).
    pub fn blame_table(&self) -> Option<crate::blame::BlameTable> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(rec) => Some(rec.lock().expect("obs recorder poisoned").blame_table()),
        }
    }

    /// Structured stuck-op diagnostics (empty when off or nothing hangs).
    pub fn stuck_report(&self) -> Vec<StuckOp> {
        match self {
            ObsSink::Off => Vec::new(),
            ObsSink::On(rec) => rec.lock().expect("obs recorder poisoned").stuck_report(),
        }
    }

    /// Pull this (shard-mode) recorder's spans and message edges for
    /// shipping to the coordinator. Cloned, not drained.
    pub fn export_shard(&self) -> (Vec<OpSpan>, Vec<MsgEdge>) {
        match self {
            ObsSink::Off => (Vec::new(), Vec::new()),
            ObsSink::On(rec) => {
                let r = rec.lock().expect("obs recorder poisoned");
                (r.spans(), r.edges.clone())
            }
        }
    }

    /// Merge a child process's shard with its estimated clock offset (its
    /// clock minus ours). See [`Recorder::absorb_shard`].
    pub fn absorb_shard(&self, spans: &[OpSpan], edges: &[MsgEdge], offset_ns: i64) {
        self.with(|r| {
            r.absorb_shard(spans, offset_ns);
            r.absorb_edges(edges, offset_ns);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::ProcId;

    fn op(seq: u64) -> OpId {
        OpId::new(ProcId::new(1, 0), seq)
    }

    #[test]
    fn off_sink_is_inert() {
        let s = ObsSink::Off;
        assert!(!s.enabled());
        s.op_issued(op(0), OpClass::Create, true, SimTime(0));
        s.client_latency(OpClass::Create, true, 100);
        assert!(s.report().is_none());
        assert!(s.stuck_report().is_empty());
    }

    #[test]
    fn lifecycle_flows_into_report() {
        let s = ObsSink::recording("cx");
        s.op_issued(op(1), OpClass::Create, true, SimTime(0));
        s.op_phase(op(1), Phase::Dispatched, SimTime(10), None);
        s.op_phase(op(1), Phase::Executed, SimTime(50), Some(ServerId(2)));
        s.op_replied(op(1), SimTime(80), OpOutcome::Applied, true);
        s.client_latency(OpClass::Create, true, 80);
        s.op_phase(op(1), Phase::VoteSent, SimTime(400), Some(ServerId(2)));
        s.op_phase(op(1), Phase::Completed, SimTime(900), Some(ServerId(2)));
        let rep = s.report().unwrap();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].client_visible_ns(), Some(80));
        assert_eq!(rep.spans[0].commitment_ns(), Some(820));
        assert_eq!(rep.client_all.count, 1);
        assert_eq!(rep.commitment.count, 1);
        assert_eq!(rep.commitment.max, 820);
        assert!(s.stuck_report().is_empty());
    }

    #[test]
    fn unreplied_ops_become_stuck() {
        let s = ObsSink::recording("cx");
        s.op_issued(op(7), OpClass::Mkdir, true, SimTime(5));
        s.op_phase(op(7), Phase::Dispatched, SimTime(9), None);
        let stuck = s.stuck_report();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].phase, Phase::Dispatched);
        assert_eq!(stuck[0].since, SimTime(9));
    }

    #[test]
    fn shard_merge_stitches_cross_process_spans_with_offset_correction() {
        // Coordinator (client-side process): sees issue, dispatch, reply.
        let coord = ObsSink::recording("cx");
        coord.op_issued(op(1), OpClass::Mkdir, true, SimTime(1_000_000));
        coord.op_phase(op(1), Phase::Dispatched, SimTime(1_100_000), None);
        coord.op_replied(op(1), SimTime(2_000_000), OpOutcome::Applied, true);
        coord.client_latency(OpClass::Mkdir, true, 1_000_000);

        // Server child: shard-mode recorder on a clock 5 ms ahead.
        let shard_cfg = ObsConfig {
            shard_mode: true,
            ..ObsConfig::default()
        };
        let child = ObsSink::with_config("cx", shard_cfg);
        let skew = 5_000_000i64;
        let at = |ours: u64| SimTime((ours as i64 + skew) as u64);
        child.op_phase(op(1), Phase::Executed, at(1_500_000), Some(ServerId(2)));
        child.op_phase(op(1), Phase::VoteSent, at(2_500_000), Some(ServerId(2)));
        child.op_phase(op(1), Phase::Completed, at(4_000_000), Some(ServerId(2)));
        // An op the coordinator never issued (another client's) is skipped.
        child.op_phase(op(99), Phase::Executed, at(1_000), Some(ServerId(2)));
        child.msg_edge(
            Some(op(1)),
            MsgKind::Vote,
            FlowNode::Server(2),
            FlowNode::Server(3),
            at(2_500_000).0,
            at(2_600_000).0,
        );

        let (spans, edges) = child.export_shard();
        assert_eq!(spans.len(), 2);
        coord.absorb_shard(&spans, &edges, skew);

        let rep = coord.report().unwrap();
        assert_eq!(rep.spans.len(), 1, "foreign op not adopted");
        let s = &rep.spans[0];
        assert_eq!(s.at(Phase::Executed), Some(1_500_000), "offset corrected");
        assert_eq!(s.at(Phase::Completed), Some(4_000_000));
        assert_eq!(s.server[Phase::Executed.index()], 2);
        // Coordinator stamps won over anything the shard could say.
        assert_eq!(s.at(Phase::Replied), Some(2_000_000));
        assert!(s.check_accounting().is_ok());
        // Completed closed the live op and fed the commitment histogram.
        assert_eq!(rep.commitment.count, 1);
        assert_eq!(rep.commitment.max, 2_000_000);
        assert!(coord.stuck_report().is_empty());
        // The edge arrived offset-corrected with a fresh id.
        assert_eq!(rep.edges.len(), 1);
        assert_eq!(rep.edges[0].sent_ns, 2_500_000);
        assert_eq!(rep.edges[0].recv_ns, 2_600_000);
    }

    #[test]
    fn shard_merge_offset_error_keeps_stamps_monotone() {
        let coord = ObsSink::recording("cx");
        coord.op_issued(op(5), OpClass::Link, true, SimTime(1_000_000));
        coord.op_replied(op(5), SimTime(3_000_000), OpOutcome::Applied, true);
        // A badly overestimated offset would pull the shard's Executed
        // stamp *before* Dispatched/Issued; the merge clamps instead.
        let shard_cfg = ObsConfig {
            shard_mode: true,
            ..ObsConfig::default()
        };
        let child = ObsSink::with_config("cx", shard_cfg);
        child.op_phase(op(5), Phase::Executed, SimTime(1_100_000), None);
        child.op_phase(op(5), Phase::Completed, SimTime(1_200_000), None);
        let (spans, edges) = child.export_shard();
        // Claimed offset 2 ms: corrected Executed would be *negative*
        // relative to Replied ordering… clamp keeps phases monotone.
        coord.absorb_shard(&spans, &edges, 2_000_000);
        let rep = coord.report().unwrap();
        let s = &rep.spans[0];
        assert!(s.check_accounting().is_ok());
        let mut prev = 0;
        for (_, t) in s.reached() {
            assert!(t >= prev, "monotone corrected stamps");
            prev = t;
        }
    }

    #[test]
    fn shard_merge_caps_stamps_at_later_coordinator_stamps() {
        let coord = ObsSink::recording("cx");
        coord.op_issued(op(6), OpClass::Link, true, SimTime(1_000_000));
        coord.op_phase(op(6), Phase::Dispatched, SimTime(1_100_000), None);
        coord.op_replied(op(6), SimTime(2_000_000), OpOutcome::Applied, true);
        let shard_cfg = ObsConfig {
            shard_mode: true,
            ..ObsConfig::default()
        };
        let child = ObsSink::with_config("cx", shard_cfg);
        child.op_phase(
            op(6),
            Phase::Executed,
            SimTime(1_500_000),
            Some(ServerId(1)),
        );
        let (spans, edges) = child.export_shard();
        // A badly *underestimated* offset (claimed −1 ms) would push the
        // corrected Executed to 2.5 ms — past the coordinator's Replied.
        // The reply carrying it proves it happened first, so the merge
        // pins it at the Replied stamp.
        coord.absorb_shard(&spans, &edges, -1_000_000);
        let rep = coord.report().unwrap();
        let s = &rep.spans[0];
        assert_eq!(s.at(Phase::Executed), Some(2_000_000), "capped at Replied");
        assert_eq!(s.server[Phase::Executed.index()], 1);
        assert!(s.check_accounting().is_ok());
    }

    #[test]
    fn sampling_caps_span_memory_but_not_histograms() {
        let cfg = ObsConfig {
            sample_every: 4,
            max_spans: 3,
            max_gauges: 2,
            max_edges: 2,
            shard_mode: false,
        };
        let s = ObsSink::with_config("cx", cfg);
        for i in 0..40 {
            s.op_issued(op(i), OpClass::Stat, false, SimTime(i));
            s.op_replied(op(i), SimTime(i + 10), OpOutcome::Applied, false);
            s.client_latency(OpClass::Stat, false, 10);
        }
        for i in 0..5 {
            s.gauge(SimTime(i), 0, GaugeKind::ValidLogBytes, i);
        }
        let rep = s.report().unwrap();
        assert_eq!(rep.spans.len(), 3);
        assert_eq!(rep.client_all.count, 40);
        assert_eq!(rep.gauges.len(), 2);
    }
}
