//! The collector: an enum sink that is a no-op when disabled.
//!
//! Runtimes and engines hold an [`ObsSink`] by value. `ObsSink::Off` is a
//! unit variant, so every emission call is a single discriminant branch
//! and returns immediately — the instrumented hot path costs nothing when
//! observability is off, and recording never schedules events or touches
//! protocol state, so golden digests are identical either way (pinned by
//! `tests/observability.rs`). `ObsSink::On` wraps the recorder in
//! `Arc<Mutex<…>>` so the same sink type serves the single-threaded DES
//! and the threaded runtime.

use crate::flow::{FlowNode, MsgEdge, MsgKind};
use crate::hist::LogHistogram;
use crate::report::ObsReport;
use crate::span::{OpSpan, Phase, StuckOp};
use cx_types::{FxHashMap, OpClass, OpId, OpOutcome, ServerId, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// What the recorder keeps in detail. Histograms always cover *every*
/// operation; full spans (for the Perfetto trace) are kept for a sampled
/// window so memory stays bounded on full-scale replays.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Keep a full span for every `sample_every`-th issued op…
    pub sample_every: u64,
    /// …up to this many spans in total.
    pub max_spans: usize,
    /// Cap on stored gauge samples (oldest kept; the run start is the
    /// interesting window once the cap is hit).
    pub max_gauges: usize,
    /// Cap on stored message edges (the causal flow arcs in the Perfetto
    /// trace; oldest kept, like gauges).
    pub max_edges: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            sample_every: 1,
            max_spans: 20_000,
            max_gauges: 100_000,
            max_edges: 50_000,
        }
    }
}

/// A virtual-time-sampled scalar, per server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GaugeKind {
    /// Objects modified by pending (uncommitted) operations.
    ActiveObjects,
    /// Unpruned log bytes.
    ValidLogBytes,
    /// Ops queued for, or riding in, commitment batches.
    PendingBatchOps,
    /// CPU queue backlog in nanoseconds (busy-until minus now).
    QueueBacklogNs,
}

impl GaugeKind {
    pub const ALL: [GaugeKind; 4] = [
        GaugeKind::ActiveObjects,
        GaugeKind::ValidLogBytes,
        GaugeKind::PendingBatchOps,
        GaugeKind::QueueBacklogNs,
    ];

    pub fn name(self) -> &'static str {
        match self {
            GaugeKind::ActiveObjects => "active_objects",
            GaugeKind::ValidLogBytes => "valid_log_bytes",
            GaugeKind::PendingBatchOps => "pending_batch_ops",
            GaugeKind::QueueBacklogNs => "queue_backlog_ns",
        }
    }
}

/// One gauge observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    pub at: SimTime,
    pub server: u32,
    pub kind: GaugeKind,
    pub value: u64,
}

/// Engine-reported instantaneous state, polled by the runtime on the
/// sampling cadence. Every protocol fills in what it has; zeros are fine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineGauges {
    /// Active objects (Cx §III-B) or the closest analogue.
    pub active_objects: u64,
    /// Ops awaiting a lazy batch plus ops inside in-flight batches.
    pub pending_batch_ops: u64,
}

/// Minimal per-op state kept for *every* in-flight op (16 bytes of
/// payload), enough for commitment-latency histograms and stuck-op
/// diagnostics without storing full spans.
#[derive(Debug, Clone, Copy)]
struct LiveOp {
    phase: Phase,
    at: SimTime,
    server: u32,
    replied_at: u64,
    cross: bool,
}

/// The shared collector behind `ObsSink::On`.
#[derive(Debug, Default)]
pub struct Recorder {
    cfg: ObsConfig,
    pub protocol: String,

    // -------- histograms over every op --------
    pub client_all: LogHistogram,
    pub client_cross: LogHistogram,
    pub client_local: LogHistogram,
    /// Replied → Completed, cross ops only (the paper's decoupled path).
    pub commitment: LogHistogram,
    pub client_by_class: Vec<LogHistogram>,

    // -------- sampled span window --------
    spans: FxHashMap<OpId, OpSpan>,
    span_order: Vec<OpId>,
    issued_seen: u64,

    // -------- live tracking of all in-flight ops --------
    live: FxHashMap<OpId, LiveOp>,

    // -------- causal message edges --------
    pub edges: Vec<MsgEdge>,
    next_edge_id: u64,
    dropped_edges: u64,

    // -------- gauges & diagnostics --------
    pub gauges: Vec<GaugeSample>,
    pub stuck: Vec<StuckOp>,
    dropped_spans: u64,
    dropped_gauges: u64,
}

impl Recorder {
    pub fn new(protocol: impl Into<String>, cfg: ObsConfig) -> Self {
        Self {
            cfg,
            protocol: protocol.into(),
            client_by_class: vec![LogHistogram::new(); OpClass::COUNT],
            ..Self::default()
        }
    }

    fn class_index(class: OpClass) -> usize {
        class.index()
    }

    fn issued(&mut self, op: OpId, class: OpClass, cross: bool, at: SimTime) {
        self.live.insert(
            op,
            LiveOp {
                phase: Phase::Issued,
                at,
                server: u32::MAX,
                replied_at: u64::MAX,
                cross,
            },
        );
        let sampled = self.issued_seen.is_multiple_of(self.cfg.sample_every)
            && self.spans.len() < self.cfg.max_spans;
        self.issued_seen += 1;
        if sampled {
            self.spans.insert(op, OpSpan::new(op, class, cross, at));
            self.span_order.push(op);
        } else {
            self.dropped_spans += 1;
        }
    }

    fn phase(&mut self, op: OpId, phase: Phase, at: SimTime, server: Option<ServerId>) {
        if let Some(live) = self.live.get_mut(&op) {
            if phase > live.phase {
                live.phase = phase;
                live.at = at;
                if let Some(s) = server {
                    live.server = s.0;
                }
            }
            if phase == Phase::Completed {
                let live = self.live.remove(&op).expect("just fetched");
                if live.replied_at != u64::MAX && live.cross {
                    self.commitment.record(at.0.saturating_sub(live.replied_at));
                }
            }
        }
        if let Some(span) = self.spans.get_mut(&op) {
            span.stamp(phase, at, server);
        }
    }

    fn replied(&mut self, op: OpId, at: SimTime, outcome: OpOutcome, awaits_commitment: bool) {
        if awaits_commitment {
            if let Some(live) = self.live.get_mut(&op) {
                if Phase::Replied > live.phase {
                    live.phase = Phase::Replied;
                    live.at = at;
                }
                live.replied_at = at.0;
            }
        } else {
            self.live.remove(&op);
        }
        if let Some(span) = self.spans.get_mut(&op) {
            span.stamp(Phase::Replied, at, None);
            span.outcome = Some(outcome);
        }
    }

    /// Client latency histograms are fed directly by the runtime (it
    /// already computes the latency for `RunStats`), so the recorder does
    /// not need to track issue stamps for unsampled ops.
    fn client_latency(&mut self, class: OpClass, cross: bool, latency_ns: u64) {
        self.client_all.record(latency_ns);
        if cross {
            self.client_cross.record(latency_ns);
        } else {
            self.client_local.record(latency_ns);
        }
        self.client_by_class[Self::class_index(class)].record(latency_ns);
    }

    fn gauge(&mut self, sample: GaugeSample) {
        if self.gauges.len() < self.cfg.max_gauges {
            self.gauges.push(sample);
        } else {
            self.dropped_gauges += 1;
        }
    }

    fn msg_edge(
        &mut self,
        op: Option<OpId>,
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        sent_ns: u64,
        recv_ns: u64,
    ) {
        self.next_edge_id += 1;
        if self.edges.len() < self.cfg.max_edges {
            self.edges.push(MsgEdge {
                id: self.next_edge_id,
                op,
                kind,
                from,
                to,
                sent_ns,
                recv_ns,
            });
        } else {
            self.dropped_edges += 1;
        }
    }

    /// Structured hang diagnostics for every op still in flight: derived
    /// from the live map, so it names the exact stalled phase even for
    /// ops outside the sampled span window.
    pub fn stuck_report(&mut self) -> Vec<StuckOp> {
        let mut v: Vec<StuckOp> = self
            .live
            .iter()
            .filter(|(_, l)| l.phase < Phase::Replied)
            .map(|(&op, l)| StuckOp {
                op,
                phase: l.phase,
                server: (l.server != u32::MAX).then_some(ServerId(l.server)),
                since: l.at,
            })
            .collect();
        v.sort_by_key(|s| (s.since, s.op));
        self.stuck = v.clone();
        v
    }

    /// The sampled spans, in issue order.
    pub fn spans(&self) -> Vec<OpSpan> {
        self.span_order
            .iter()
            .filter_map(|op| self.spans.get(op).copied())
            .collect()
    }

    /// Snapshot everything into the exportable report.
    pub fn report(&self) -> ObsReport {
        ObsReport::from_recorder(self)
    }

    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    pub fn dropped_edges(&self) -> u64 {
        self.dropped_edges
    }
}

/// The sink handed to runtimes and engines. Cloning is cheap (`Off` is a
/// unit; `On` bumps an `Arc`).
#[derive(Clone, Default)]
pub enum ObsSink {
    /// Recording disabled: every call returns immediately.
    #[default]
    Off,
    /// Recording into a shared [`Recorder`].
    On(Arc<Mutex<Recorder>>),
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsSink::Off => write!(f, "ObsSink::Off"),
            ObsSink::On(_) => write!(f, "ObsSink::On"),
        }
    }
}

impl ObsSink {
    /// A recording sink with the default sampling window.
    pub fn recording(protocol: impl Into<String>) -> Self {
        Self::with_config(protocol, ObsConfig::default())
    }

    pub fn with_config(protocol: impl Into<String>, cfg: ObsConfig) -> Self {
        ObsSink::On(Arc::new(Mutex::new(Recorder::new(protocol, cfg))))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, ObsSink::On(_))
    }

    #[inline]
    fn with(&self, f: impl FnOnce(&mut Recorder)) {
        if let ObsSink::On(rec) = self {
            f(&mut rec.lock().expect("obs recorder poisoned"));
        }
    }

    /// An operation was issued by its process.
    #[inline]
    pub fn op_issued(&self, op: OpId, class: OpClass, cross: bool, at: SimTime) {
        self.with(|r| r.issued(op, class, cross, at));
    }

    /// A lifecycle milestone was reached.
    #[inline]
    pub fn op_phase(&self, op: OpId, phase: Phase, at: SimTime, server: Option<ServerId>) {
        self.with(|r| r.phase(op, phase, at, server));
    }

    /// The process received its final response. `awaits_commitment` keeps
    /// the op live until [`Phase::Completed`] (Cx cross ops); all other
    /// protocols finish everything before the reply.
    #[inline]
    pub fn op_replied(&self, op: OpId, at: SimTime, outcome: OpOutcome, awaits_commitment: bool) {
        self.with(|r| r.replied(op, at, outcome, awaits_commitment));
    }

    /// Feed the client-visible latency (the runtime computes it anyway).
    #[inline]
    pub fn client_latency(&self, class: OpClass, cross: bool, latency_ns: u64) {
        self.with(|r| r.client_latency(class, cross, latency_ns));
    }

    /// Record a cross-server message edge: `kind` sent `from → to` at
    /// `sent_ns`, delivered at `recv_ns`. The runtime calls this at the
    /// send site (the DES schedules the delivery time there anyway).
    #[inline]
    pub fn msg_edge(
        &self,
        op: Option<OpId>,
        kind: MsgKind,
        from: FlowNode,
        to: FlowNode,
        sent_ns: u64,
        recv_ns: u64,
    ) {
        self.with(|r| r.msg_edge(op, kind, from, to, sent_ns, recv_ns));
    }

    /// Record a gauge observation.
    #[inline]
    pub fn gauge(&self, at: SimTime, server: u32, kind: GaugeKind, value: u64) {
        self.with(|r| {
            r.gauge(GaugeSample {
                at,
                server,
                kind,
                value,
            })
        });
    }

    /// Snapshot the exportable report (None when the sink is off).
    pub fn report(&self) -> Option<ObsReport> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(rec) => Some(rec.lock().expect("obs recorder poisoned").report()),
        }
    }

    /// Structured stuck-op diagnostics (empty when off or nothing hangs).
    pub fn stuck_report(&self) -> Vec<StuckOp> {
        match self {
            ObsSink::Off => Vec::new(),
            ObsSink::On(rec) => rec.lock().expect("obs recorder poisoned").stuck_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::ProcId;

    fn op(seq: u64) -> OpId {
        OpId::new(ProcId::new(1, 0), seq)
    }

    #[test]
    fn off_sink_is_inert() {
        let s = ObsSink::Off;
        assert!(!s.enabled());
        s.op_issued(op(0), OpClass::Create, true, SimTime(0));
        s.client_latency(OpClass::Create, true, 100);
        assert!(s.report().is_none());
        assert!(s.stuck_report().is_empty());
    }

    #[test]
    fn lifecycle_flows_into_report() {
        let s = ObsSink::recording("cx");
        s.op_issued(op(1), OpClass::Create, true, SimTime(0));
        s.op_phase(op(1), Phase::Dispatched, SimTime(10), None);
        s.op_phase(op(1), Phase::Executed, SimTime(50), Some(ServerId(2)));
        s.op_replied(op(1), SimTime(80), OpOutcome::Applied, true);
        s.client_latency(OpClass::Create, true, 80);
        s.op_phase(op(1), Phase::VoteSent, SimTime(400), Some(ServerId(2)));
        s.op_phase(op(1), Phase::Completed, SimTime(900), Some(ServerId(2)));
        let rep = s.report().unwrap();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].client_visible_ns(), Some(80));
        assert_eq!(rep.spans[0].commitment_ns(), Some(820));
        assert_eq!(rep.client_all.count, 1);
        assert_eq!(rep.commitment.count, 1);
        assert_eq!(rep.commitment.max, 820);
        assert!(s.stuck_report().is_empty());
    }

    #[test]
    fn unreplied_ops_become_stuck() {
        let s = ObsSink::recording("cx");
        s.op_issued(op(7), OpClass::Mkdir, true, SimTime(5));
        s.op_phase(op(7), Phase::Dispatched, SimTime(9), None);
        let stuck = s.stuck_report();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].phase, Phase::Dispatched);
        assert_eq!(stuck[0].since, SimTime(9));
    }

    #[test]
    fn sampling_caps_span_memory_but_not_histograms() {
        let cfg = ObsConfig {
            sample_every: 4,
            max_spans: 3,
            max_gauges: 2,
            max_edges: 2,
        };
        let s = ObsSink::with_config("cx", cfg);
        for i in 0..40 {
            s.op_issued(op(i), OpClass::Stat, false, SimTime(i));
            s.op_replied(op(i), SimTime(i + 10), OpOutcome::Applied, false);
            s.client_latency(OpClass::Stat, false, 10);
        }
        for i in 0..5 {
            s.gauge(SimTime(i), 0, GaugeKind::ValidLogBytes, i);
        }
        let rep = s.report().unwrap();
        assert_eq!(rep.spans.len(), 3);
        assert_eq!(rep.client_all.count, 40);
        assert_eq!(rep.gauges.len(), 2);
    }
}
