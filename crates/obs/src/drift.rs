//! `cx-obs bench-drift`: the perf-history trajectory table.
//!
//! `perf_baseline` appends one `BENCH_PR<N>.json` per PR gate; each file
//! carries labeled runs of named benchmark entries (wall seconds, events-
//! or ops-per-second, peak RSS). The drift view folds the whole series
//! into one per-metric trajectory table — the comparison perf_baseline
//! prints against a single `--against` file, but across every snapshot at
//! once and without running a benchmark. Parsing is generic (the untyped
//! [`Json`] tree), so the table survives schema additions in either
//! direction.

use crate::hist::fmt_ns_f;
use serde::Json;

/// One benchmark snapshot: a labeled run and its entries' numeric metrics.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Run label (`pr9`), falling back to the file name.
    pub label: String,
    /// `(entry name, metric name, value)` triples, in file order.
    pub metrics: Vec<(String, String, f64)>,
}

fn get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v {
        Json::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        Json::F64(f) => Some(*f),
        _ => None,
    }
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// The metrics worth trending, in display order. Everything else in an
/// entry (iteration counts, raw totals) stays out of the table.
const TRENDED: [&str; 5] = [
    "events_per_sec",
    "ops_per_sec",
    "wall_secs",
    "peak_rss_kb",
    "span_ns_per_op",
];

/// Parse one `BENCH_PR*.json` into its labeled points (a file can hold
/// several runs; most hold one).
pub fn parse_bench_file(text: &str, fallback_label: &str) -> Result<Vec<BenchPoint>, String> {
    let v = serde_json::parse_value(text).map_err(|e| format!("{e:?}"))?;
    let runs = match get(&v, "runs") {
        Some(Json::Array(a)) => a.as_slice(),
        _ => return Err("no `runs` array".into()),
    };
    let mut points = Vec::new();
    for run in runs {
        let label = get(run, "label")
            .and_then(as_str)
            .unwrap_or(fallback_label)
            .to_string();
        let mut metrics = Vec::new();
        if let Some(Json::Array(entries)) = get(run, "entries") {
            for e in entries {
                let Some(name) = get(e, "name").and_then(as_str) else {
                    continue;
                };
                for m in TRENDED {
                    if let Some(val) = get(e, m).and_then(as_f64) {
                        metrics.push((name.to_string(), m.to_string(), val));
                    }
                }
            }
        }
        points.push(BenchPoint { label, metrics });
    }
    Ok(points)
}

/// Natural sort key: the first integer embedded in the label (`pr10` → 10),
/// so `pr10` trends after `pr9` instead of between `pr1` and `pr3`.
fn label_key(label: &str) -> (u64, String) {
    let digits: String = label
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    (digits.parse().unwrap_or(u64::MAX), label.to_string())
}

fn fmt_metric(metric: &str, v: f64) -> String {
    match metric {
        "events_per_sec" | "ops_per_sec" => {
            if v >= 1e6 {
                format!("{:.2}M/s", v / 1e6)
            } else {
                format!("{:.1}k/s", v / 1e3)
            }
        }
        "wall_secs" => format!("{v:.3}s"),
        "peak_rss_kb" => format!("{:.1}MB", v / 1024.0),
        "span_ns_per_op" => fmt_ns_f(v),
        _ => format!("{v:.3}"),
    }
}

/// Render the trajectory table over points from every snapshot, sorted by
/// PR number. Each (entry, metric) pair becomes one block with the value
/// and the ratio against the series' first appearance.
pub fn render_drift(points: &[BenchPoint]) -> String {
    let mut points: Vec<&BenchPoint> = points.iter().collect();
    points.sort_by_key(|p| label_key(&p.label));
    let mut out = String::new();
    out.push_str(&format!("== bench drift · {} snapshots: ", points.len()));
    out.push_str(
        &points
            .iter()
            .map(|p| p.label.as_str())
            .collect::<Vec<_>>()
            .join(" → "),
    );
    out.push_str(" ==\n");
    // Stable (entry, metric) order: first appearance across the series.
    let mut keys: Vec<(String, String)> = Vec::new();
    for p in &points {
        for (entry, metric, _) in &p.metrics {
            if !keys.iter().any(|(e, m)| e == entry && m == metric) {
                keys.push((entry.clone(), metric.clone()));
            }
        }
    }
    for (entry, metric) in keys {
        out.push_str(&format!("{entry} · {metric}:\n"));
        let mut first: Option<f64> = None;
        for p in &points {
            let Some((_, _, v)) = p
                .metrics
                .iter()
                .find(|(e, m, _)| *e == entry && *m == metric)
            else {
                continue;
            };
            let base = *first.get_or_insert(*v);
            let ratio = if base != 0.0 { v / base } else { 0.0 };
            // For time/memory metrics lower is better; flag growth either
            // way — the reader knows the metric's polarity.
            out.push_str(&format!(
                "  {:<10} {:>12} {:>8}\n",
                p.label,
                fmt_metric(&metric, *v),
                format!("{ratio:.2}x"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PR1: &str = r#"{"runs":[{"label":"pr1","iters":5,"entries":[
        {"name":"home2_replay_8s","wall_secs":0.2,"events_per_sec":2500000.0,"ops_total":136030,"peak_rss_kb":50000}]}]}"#;
    const PR10: &str = r#"{"runs":[{"label":"pr10","iters":5,"entries":[
        {"name":"home2_replay_8s","wall_secs":0.19,"events_per_sec":3100000.0,"ops_total":136030,"peak_rss_kb":51000},
        {"name":"home2_tcp_loopback_8s","wall_secs":0.12,"ops_per_sec":43000.0,"ops_total":5441,"peak_rss_kb":57000}]}]}"#;
    const PR9: &str = r#"{"runs":[{"label":"pr9","iters":5,"entries":[
        {"name":"home2_replay_8s","wall_secs":0.2,"events_per_sec":3000000.0,"ops_total":136030,"peak_rss_kb":51500}]}]}"#;

    #[test]
    fn parses_and_orders_naturally() {
        let mut pts = Vec::new();
        // Deliberately shuffled: lexical order would put pr10 before pr9.
        for (text, name) in [(PR10, "a"), (PR1, "b"), (PR9, "c")] {
            pts.extend(parse_bench_file(text, name).unwrap());
        }
        let table = render_drift(&pts);
        let pr9 = table.find("pr9").unwrap();
        let pr10 = table.find("pr10").unwrap();
        let pr1 = table.find("pr1 ").unwrap();
        assert!(pr1 < pr9 && pr9 < pr10, "natural order: {table}");
        assert!(table.contains("events_per_sec"));
        // Ratio against the first snapshot: 3.1M / 2.5M = 1.24x.
        assert!(table.contains("1.24x"), "{table}");
        // Entries absent from early snapshots still get a block.
        assert!(table.contains("home2_tcp_loopback_8s · ops_per_sec"));
    }

    #[test]
    fn rejects_junk() {
        assert!(parse_bench_file("not json", "x").is_err());
        assert!(parse_bench_file("{\"no_runs\":1}", "x").is_err());
    }
}
