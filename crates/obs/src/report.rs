//! The exportable snapshot of a run's observability data, plus the
//! exporters: Chrome-trace-event JSON (loadable in Perfetto / chrome://
//! tracing), a JSONL event stream, and the text dashboard rendered by
//! `cx-obs report`.

use crate::flow::MsgEdge;
use crate::hist::{fmt_ns_f, HistSummary, LogHistogram};
use crate::net::FlushSpan;
use crate::sink::{GaugeKind, GaugeSample, Recorder};
use crate::span::{OpSpan, Phase, StuckOp};
use serde::{Deserialize, Serialize};

/// Client-visible latency of one op class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassRow {
    pub class: String,
    pub hist: LogHistogram,
}

/// Duration between two adjacent lifecycle phases, over the sampled spans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentRow {
    pub from: Phase,
    pub to: Phase,
    pub hist: LogHistogram,
}

/// Everything a run recorded, in one serializable artifact. This is what
/// `--obs` writes to disk and what `cx-obs report` reads back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsReport {
    pub protocol: String,
    /// Ops whose issue the recorder saw (sampled or not).
    pub ops_issued: u64,

    /// Client-visible latency (Issued → Replied), every op.
    pub client_all: LogHistogram,
    /// …cross-server ops only.
    pub client_cross: LogHistogram,
    /// …single-server ops only.
    pub client_local: LogHistogram,
    /// Commitment-path latency (Replied → Completed), cross ops. Only Cx
    /// populates this: the other protocols commit before replying.
    pub commitment: LogHistogram,
    /// Per-op-class client latency (empty classes omitted).
    pub per_class: Vec<ClassRow>,
    /// Adjacent-phase segment durations over the sampled spans.
    pub segments: Vec<SegmentRow>,

    /// The sampled span window, in issue order.
    pub spans: Vec<OpSpan>,
    /// Causal message edges (send → delivery), rendered as flow arcs.
    pub edges: Vec<MsgEdge>,
    /// Wall-clock wire flushes (TCP runs with flush-span recording on;
    /// empty under the DES). The runtime attaches these after
    /// [`ObsReport::from_recorder`] — the recorder itself never sees the
    /// wire plane.
    pub flushes: Vec<FlushSpan>,
    /// Virtual-time gauge samples.
    pub gauges: Vec<GaugeSample>,
    /// Ops still short of their reply when the run ended.
    pub stuck: Vec<StuckOp>,

    pub dropped_spans: u64,
    pub dropped_edges: u64,
}

impl ObsReport {
    pub fn from_recorder(rec: &Recorder) -> Self {
        let spans = rec.spans();
        let per_class = cx_types::OpClass::ALL
            .iter()
            .zip(&rec.client_by_class)
            .filter(|(_, h)| h.count > 0)
            .map(|(c, h)| ClassRow {
                class: c.name().to_string(),
                hist: h.clone(),
            })
            .collect();
        let mut segments: Vec<SegmentRow> = Phase::ALL
            .windows(2)
            .map(|w| SegmentRow {
                from: w[0],
                to: w[1],
                hist: LogHistogram::new(),
            })
            .collect();
        for span in &spans {
            let mut prev: Option<(Phase, u64)> = None;
            for (p, t) in span.reached() {
                if let Some((pp, pt)) = prev {
                    // Only credit directly adjacent phases, so a skipped
                    // milestone never smears into its neighbour's segment.
                    if p.index() == pp.index() + 1 {
                        segments[pp.index()].hist.record(t.saturating_sub(pt));
                    }
                }
                prev = Some((p, t));
            }
        }
        Self {
            protocol: rec.protocol.clone(),
            ops_issued: rec.client_all.count,
            client_all: rec.client_all.clone(),
            client_cross: rec.client_cross.clone(),
            client_local: rec.client_local.clone(),
            commitment: rec.commitment.clone(),
            per_class,
            segments,
            spans,
            edges: rec.edges.clone(),
            flushes: Vec::new(),
            gauges: rec.gauges.clone(),
            stuck: rec.stuck.clone(),
            dropped_spans: rec.dropped_spans(),
            dropped_edges: rec.dropped_edges(),
        }
    }

    /// Compute the blame table over this report's spans and edges. Always
    /// derived on the fly — the report's JSON schema stays unchanged, so
    /// `cx-obs doctor --against` works on artifacts from older runs.
    pub fn blame(&self) -> crate::blame::BlameTable {
        crate::blame::BlameTable::from_spans(&self.protocol, &self.spans, &self.edges)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ObsReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad ObsReport JSON: {e:?}"))
    }

    /// The CI smoke contract: every sampled span's phases are ordered and
    /// their segment durations sum to the client-visible latency.
    pub fn validate(&self) -> Result<(), String> {
        for span in &self.spans {
            span.check_accounting()?;
        }
        Ok(())
    }

    /// Chrome trace-event JSON (the `traceEvents` array format), loadable
    /// in Perfetto (ui.perfetto.dev) and chrome://tracing. Written by
    /// hand: the format is flat and the shim serde stack stays out of the
    /// hot loop. Timestamps are virtual-time microseconds.
    ///
    /// Layout: pid 1 = client-visible path (one track per process), pid 2
    /// = commitment path (one track per coordinator server), pid 3 =
    /// gauges as counter tracks, pid 4 = message flows (one track per
    /// node) with `s`/`f` arcs tying sender to receiver, pid 5 = wire
    /// flushes (one track per sending node; TCP runs only).
    pub fn to_chrome_trace(&self) -> String {
        let us = |ns: u64| ns as f64 / 1000.0;
        let mut ev: Vec<String> = Vec::new();
        for (pid, name) in [(1, "client-visible"), (2, "commitment"), (3, "gauges")] {
            ev.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for s in &self.spans {
            let tid = s.op.proc.client.0;
            let outcome = match s.outcome {
                Some(cx_types::OpOutcome::Applied) => "applied",
                Some(cx_types::OpOutcome::Failed) => "failed",
                None => "in-flight",
            };
            if let (Some(issued), Some(total)) = (s.at(Phase::Issued), s.client_visible_ns()) {
                ev.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"client\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{tid},\"args\":{{\"op\":\"{}\",\
                     \"cross\":{},\"outcome\":\"{outcome}\"}}}}",
                    s.class.name(),
                    us(issued),
                    us(total),
                    s.op,
                    s.cross,
                ));
                // Sub-slices for the client-visible segments, nested under
                // the op slice on the same track.
                let mut prev: Option<(Phase, u64)> = None;
                for p in [
                    Phase::Issued,
                    Phase::Dispatched,
                    Phase::Executed,
                    Phase::Replied,
                ] {
                    let Some(t) = s.at(p) else { continue };
                    if let Some((pp, pt)) = prev {
                        ev.push(format!(
                            "{{\"name\":\"{}→{}\",\"cat\":\"segment\",\"ph\":\"X\",\
                             \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{tid}}}",
                            pp.name(),
                            p.name(),
                            us(pt),
                            us(t.saturating_sub(pt)),
                        ));
                    }
                    prev = Some((p, t));
                }
            }
            // The decoupled commitment path gets its own process so the
            // trace shows it visibly *off* the client track.
            if let (Some(replied), Some(commit)) = (s.at(Phase::Replied), s.commitment_ns()) {
                if s.cross && s.at(Phase::Completed).is_some() {
                    let srv = s.server[Phase::Completed.index()];
                    let ctid = if srv == u32::MAX { 0 } else { srv };
                    ev.push(format!(
                        "{{\"name\":\"commit {}\",\"cat\":\"commitment\",\"ph\":\"X\",\
                         \"ts\":{:.3},\"dur\":{:.3},\"pid\":2,\"tid\":{ctid},\
                         \"args\":{{\"op\":\"{}\"}}}}",
                        s.class.name(),
                        us(replied),
                        us(commit),
                        s.op,
                    ));
                }
            }
        }
        for g in &self.gauges {
            ev.push(format!(
                "{{\"name\":\"{} s{}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":3,\"tid\":0,\
                 \"args\":{{\"value\":{}}}}}",
                g.kind.name(),
                g.server,
                us(g.at.0),
                g.value,
            ));
        }
        crate::flow::chrome_flow_events(&self.edges, 4, &mut ev);
        crate::net::chrome_flush_events(&self.flushes, 5, &mut ev);
        // pid 6: the blame doctor's tail exemplars — each slowest op's
        // critical path as one track of named segment slices, aligned with
        // the client/commitment tracks via the span's issue stamp.
        let blame = self.blame();
        if !blame.exemplars.is_empty() {
            ev.push(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":6,\"tid\":0,\
                 \"args\":{\"name\":\"critical paths (tail exemplars)\"}}"
                    .to_string(),
            );
            for (rank, ex) in blame.exemplars.iter().enumerate() {
                let Some(issued) = self
                    .spans
                    .iter()
                    .find(|s| s.op.to_string() == ex.op)
                    .and_then(|s| s.at(Phase::Issued))
                else {
                    continue;
                };
                ev.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":6,\"tid\":{rank},\
                     \"args\":{{\"name\":\"#{} {} ({})\"}}}}",
                    rank + 1,
                    ex.op,
                    ex.class,
                ));
                for row in &ex.chain {
                    ev.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"blame\",\"ph\":\"X\",\"ts\":{:.3},\
                         \"dur\":{:.3},\"pid\":6,\"tid\":{rank},\
                         \"args\":{{\"detail\":\"{}\"}}}}",
                        row.seg.name(),
                        us(issued + row.t_rel_ns),
                        us(row.dur_ns),
                        row.label,
                    ));
                }
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
            ev.join(",\n")
        )
    }

    /// One JSON object per line: spans, gauges, stuck ops. Grep-friendly
    /// and streamable, unlike the single-document report.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |kind: &str, body: String| {
            out.push_str(&format!("{{\"type\":\"{kind}\",\"data\":{body}}}\n"));
        };
        for s in &self.spans {
            push("span", serde_json::to_string(s).expect("span serializes"));
        }
        for e in &self.edges {
            push("edge", serde_json::to_string(e).expect("edge serializes"));
        }
        for g in &self.gauges {
            push("gauge", serde_json::to_string(g).expect("gauge serializes"));
        }
        for st in &self.stuck {
            push(
                "stuck",
                serde_json::to_string(st).expect("stuck serializes"),
            );
        }
        out
    }

    /// The per-op causal chain behind `cx-obs trace --op`: the op's
    /// lifecycle stamps interleaved with every message edge recorded for
    /// it, in time order. `needle` matches against the op's rendered id
    /// (`op(1/0#3)`), substring semantics, so `1/0#3` works as-is.
    pub fn render_causal(&self, needle: &str) -> String {
        let mut out = String::new();
        let spans: Vec<&OpSpan> = self
            .spans
            .iter()
            .filter(|s| s.op.to_string().contains(needle))
            .collect();
        let edges: Vec<&MsgEdge> = self
            .edges
            .iter()
            .filter(|e| e.op.is_some_and(|op| op.to_string().contains(needle)))
            .collect();
        if spans.is_empty() && edges.is_empty() {
            return format!(
                "no span or message edge matches \"{needle}\" \
                 ({} sampled spans, {} edges in this report)\n",
                self.spans.len(),
                self.edges.len()
            );
        }
        for s in &spans {
            let outcome = match s.outcome {
                Some(cx_types::OpOutcome::Applied) => "applied",
                Some(cx_types::OpOutcome::Failed) => "failed",
                None => "in-flight",
            };
            out.push_str(&format!(
                "== {} · {} · {} · {outcome} ==\n",
                s.op,
                s.class.name(),
                if s.cross {
                    "cross-server"
                } else {
                    "single-server"
                },
            ));
            // Merge phase stamps and message edges into one timeline.
            let mut rows: Vec<(u64, String)> = s
                .reached()
                .map(|(p, t)| {
                    let srv = s.server[p.index()];
                    let at = if srv == u32::MAX {
                        "client".to_string()
                    } else {
                        format!("s{srv}")
                    };
                    (t, format!("phase {:<13} @ {at}", p.name()))
                })
                .collect();
            for e in &edges {
                if e.op.map(|op| op == s.op).unwrap_or(false) {
                    rows.push((
                        e.sent_ns,
                        format!(
                            "msg   {:<13} {} → {} (flight {})",
                            e.kind.name(),
                            e.from,
                            e.to,
                            HistSummary::fmt_ns(e.recv_ns.saturating_sub(e.sent_ns)),
                        ),
                    ));
                }
            }
            rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let t0 = rows.first().map(|r| r.0).unwrap_or(0);
            for (t, line) in rows {
                out.push_str(&format!(
                    "  +{:<11} {line}\n",
                    HistSummary::fmt_ns(t.saturating_sub(t0))
                ));
            }
            if let Some(v) = s.client_visible_ns() {
                out.push_str(&format!("  client-visible {}", HistSummary::fmt_ns(v)));
                if let Some(c) = s.commitment_ns() {
                    out.push_str(&format!(
                        ", commitment ran {} behind",
                        HistSummary::fmt_ns(c)
                    ));
                }
                out.push('\n');
            }
        }
        if spans.is_empty() {
            out.push_str(&format!(
                "(op outside the sampled span window; {} matching edges)\n",
                edges.len()
            ));
            for e in edges {
                out.push_str(&format!(
                    "  @{:<12} msg {:<13} {} → {}\n",
                    HistSummary::fmt_ns(e.sent_ns),
                    e.kind.name(),
                    e.from,
                    e.to,
                ));
            }
        }
        out
    }

    /// The text dashboard `cx-obs report` prints.
    pub fn render_dashboard(&self) -> String {
        fn row(label: &str, s: &HistSummary) -> String {
            format!(
                "  {label:<28} n={:<8} mean={:<9} p50={:<9} p90={:<9} p99={:<9} p99.9={:<9} max={}\n",
                s.count,
                fmt_ns_f(s.mean_ns),
                HistSummary::fmt_ns(s.p50_ns),
                HistSummary::fmt_ns(s.p90_ns),
                HistSummary::fmt_ns(s.p99_ns),
                HistSummary::fmt_ns(s.p999_ns),
                HistSummary::fmt_ns(s.max_ns),
            )
        }
        let mut out = String::new();
        out.push_str(&format!(
            "== observability report · protocol {} · {} ops ==\n",
            self.protocol, self.ops_issued
        ));
        out.push_str("client-visible latency (issued → replied):\n");
        out.push_str(&row("all ops", &self.client_all.summary()));
        if self.client_cross.count > 0 {
            out.push_str(&row("cross-server", &self.client_cross.summary()));
        }
        if self.client_local.count > 0 {
            out.push_str(&row("single-server", &self.client_local.summary()));
        }
        if self.commitment.count > 0 {
            out.push_str("commitment path (replied → completed, off the client path):\n");
            out.push_str(&row("cross-server", &self.commitment.summary()));
            let c = self.commitment.summary();
            let v = self.client_cross.summary();
            out.push_str(&format!(
                "  => p50 commitment {} runs behind a p50 client reply of {} — \
                 excluded from client-visible latency\n",
                HistSummary::fmt_ns(c.p50_ns),
                HistSummary::fmt_ns(v.p50_ns),
            ));
        } else {
            out.push_str(&format!(
                "commitment path: none recorded ({} commits before replying)\n",
                self.protocol
            ));
        }
        if !self.per_class.is_empty() {
            out.push_str("per-class client latency:\n");
            for c in &self.per_class {
                out.push_str(&row(&c.class, &c.hist.summary()));
            }
        }
        let blame = self.blame();
        let top = blame.top_segments();
        if !top.is_empty() {
            out.push_str(
                "blame (critical-path time by segment, use `cx-obs doctor` for detail):\n",
            );
            for (seg, hist) in top.iter().take(4) {
                out.push_str(&format!(
                    "  {:<28} n={:<8} mean={:<9} total={}\n",
                    seg.name(),
                    hist.count,
                    fmt_ns_f(hist.mean()),
                    fmt_ns_f(hist.sum as f64),
                ));
            }
        }
        let live_segments: Vec<&SegmentRow> =
            self.segments.iter().filter(|s| s.hist.count > 0).collect();
        if !live_segments.is_empty() {
            out.push_str(&format!(
                "phase segments over {} sampled spans:\n",
                self.spans.len()
            ));
            for s in live_segments {
                out.push_str(&row(
                    &format!("{} → {}", s.from.name(), s.to.name()),
                    &s.hist.summary(),
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("gauges: {} samples\n", self.gauges.len()));
            for kind in GaugeKind::ALL {
                let vals: Vec<u64> = self
                    .gauges
                    .iter()
                    .filter(|g| g.kind == kind)
                    .map(|g| g.value)
                    .collect();
                if let (Some(&last), Some(&max)) = (vals.last(), vals.iter().max()) {
                    out.push_str(&format!(
                        "  {:<28} samples={:<8} last={:<12} max={}\n",
                        kind.name(),
                        vals.len(),
                        last,
                        max
                    ));
                }
            }
        }
        if self.stuck.is_empty() {
            out.push_str("stuck ops: none\n");
        } else {
            out.push_str(&format!("stuck ops: {}\n", self.stuck.len()));
            for s in self.stuck.iter().take(20) {
                out.push_str(&format!("  {s}\n"));
            }
            if self.stuck.len() > 20 {
                out.push_str(&format!("  … and {} more\n", self.stuck.len() - 20));
            }
        }
        if self.dropped_spans > 0 {
            out.push_str(&format!(
                "spans: {} sampled, {} beyond the sampling window\n",
                self.spans.len(),
                self.dropped_spans
            ));
        }
        if !self.edges.is_empty() || self.dropped_edges > 0 {
            out.push_str(&format!(
                "message edges: {} recorded, {} beyond the cap\n",
                self.edges.len(),
                self.dropped_edges
            ));
        }
        if !self.flushes.is_empty() {
            let frames: u64 = self.flushes.iter().map(|f| f.frames as u64).sum();
            out.push_str(&format!(
                "wire flushes: {} spans covering {} frames\n",
                self.flushes.len(),
                frames
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;
    use cx_types::{OpClass, OpId, OpOutcome, ProcId, ServerId, SimTime};

    fn op(seq: u64) -> OpId {
        OpId::new(ProcId::new(2, 0), seq)
    }

    fn recorded_sink() -> ObsSink {
        let s = ObsSink::recording("cx");
        s.op_issued(op(1), OpClass::Create, true, SimTime(1_000));
        s.op_phase(op(1), Phase::Dispatched, SimTime(2_000), None);
        s.op_phase(op(1), Phase::Executed, SimTime(9_000), Some(ServerId(4)));
        s.op_replied(op(1), SimTime(12_000), OpOutcome::Applied, true);
        s.client_latency(OpClass::Create, true, 11_000);
        s.op_phase(op(1), Phase::VoteSent, SimTime(50_000), Some(ServerId(4)));
        s.op_phase(
            op(1),
            Phase::DecisionSent,
            SimTime(60_000),
            Some(ServerId(4)),
        );
        s.op_phase(op(1), Phase::Acked, SimTime(70_000), Some(ServerId(5)));
        s.op_phase(op(1), Phase::Completed, SimTime(80_000), Some(ServerId(4)));
        s.op_issued(op(2), OpClass::Stat, false, SimTime(3_000));
        s.op_replied(op(2), SimTime(4_000), OpOutcome::Applied, false);
        s.client_latency(OpClass::Stat, false, 1_000);
        s.gauge(SimTime(10_000), 0, GaugeKind::ValidLogBytes, 4096);
        s.gauge(SimTime(10_000), 0, GaugeKind::ActiveObjects, 3);
        s.msg_edge(
            Some(op(1)),
            crate::flow::MsgKind::Vote,
            crate::flow::FlowNode::Server(4),
            crate::flow::FlowNode::Server(5),
            50_000,
            55_000,
        );
        s.msg_edge(
            Some(op(1)),
            crate::flow::MsgKind::Ack,
            crate::flow::FlowNode::Server(5),
            crate::flow::FlowNode::Server(4),
            65_000,
            70_000,
        );
        s
    }

    #[test]
    fn report_round_trips_and_validates() {
        let rep = recorded_sink().report().unwrap();
        assert!(rep.validate().is_ok());
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.per_class.len(), 2);
        let back = ObsReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.spans.len(), 2);
        assert_eq!(back.client_all.count, rep.client_all.count);
        assert_eq!(back.commitment.max, 68_000);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_slices() {
        let mut rep = recorded_sink().report().unwrap();
        rep.flushes.push(crate::net::FlushSpan {
            from: crate::flow::FlowNode::Server(4),
            to: crate::flow::FlowNode::Server(5),
            start_ns: 50_000,
            dur_ns: 3_000,
            frames: 8,
            bytes: 512,
        });
        let trace = rep.to_chrome_trace();
        serde_json::parse_value(&trace).expect("chrome trace must parse as JSON");
        assert!(trace.contains("\"ph\":\"X\""), "complete events present");
        assert!(trace.contains("\"ph\":\"C\""), "counter events present");
        assert!(trace.contains("commit create"), "commitment slice present");
        assert!(trace.contains("valid_log_bytes"));
        assert!(
            trace.contains("\"ph\":\"s\"") && trace.contains("\"ph\":\"f\""),
            "flow arcs present"
        );
        assert!(trace.contains("wire flushes"), "flush track present");
        assert!(trace.contains("flush → s5"));
    }

    #[test]
    fn causal_render_merges_phases_and_edges() {
        let rep = recorded_sink().report().unwrap();
        let text = rep.render_causal("2/0#1");
        assert!(text.contains("phase vote-sent"));
        assert!(text.contains("msg   VOTE"));
        assert!(text.contains("msg   ACK"));
        assert!(text.contains("commitment ran"));
        assert!(rep
            .render_causal("9/9#99")
            .contains("no span or message edge"));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let rep = recorded_sink().report().unwrap();
        let jsonl = rep.to_jsonl();
        let mut n = 0;
        for line in jsonl.lines() {
            serde_json::parse_value(line).expect("each line parses");
            n += 1;
        }
        assert_eq!(n, 6); // 2 spans + 2 edges + 2 gauges
    }

    #[test]
    fn dashboard_mentions_the_decoupling() {
        let rep = recorded_sink().report().unwrap();
        let text = rep.render_dashboard();
        assert!(text.contains("client-visible latency"));
        assert!(text.contains("excluded from client-visible latency"));
        assert!(text.contains("create"));
        assert!(text.contains("stuck ops: none"));
    }

    #[test]
    fn segments_skip_non_adjacent_phases() {
        let s = ObsSink::recording("cx");
        s.op_issued(op(3), OpClass::Mkdir, true, SimTime(0));
        // Executed without Dispatched: Issued→Executed must not be
        // credited to either adjacent segment.
        s.op_phase(op(3), Phase::Executed, SimTime(100), None);
        s.op_replied(op(3), SimTime(150), OpOutcome::Applied, false);
        let rep = s.report().unwrap();
        let seg = |from: Phase| {
            rep.segments
                .iter()
                .find(|r| r.from == from)
                .unwrap()
                .hist
                .count
        };
        assert_eq!(seg(Phase::Issued), 0);
        assert_eq!(seg(Phase::Dispatched), 0);
        assert_eq!(seg(Phase::Executed), 1);
    }
}
