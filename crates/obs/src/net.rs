//! Wire-plane observability types: per-flush spans for the Perfetto
//! trace and the per-peer table behind `cx-obs net`.
//!
//! `cx-net` records these (it depends on this crate, not the other way
//! around); the TCP runtime collects one [`NetTable`] per process and the
//! coordinator merges them next to the span shards.

use crate::flow::FlowNode;
use crate::hist::fmt_ns_f;
use serde::{Deserialize, Serialize};

/// One coalesced `write_all` on a peer connection: where it went, when it
/// started on the recording process's clock, how long the syscall took,
/// and how much it carried. Compact and `Copy` so the writer path can
/// stamp one per flush without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlushSpan {
    pub from: FlowNode,
    pub to: FlowNode,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub frames: u32,
    pub bytes: u32,
}

/// Render flush spans as Chrome-trace slices under process `pid`: one
/// track per sending node, one `X` slice per flush, named for the
/// destination and sized by the syscall duration.
pub fn chrome_flush_events(spans: &[FlushSpan], pid: u32, ev: &mut Vec<String>) {
    if spans.is_empty() {
        return;
    }
    ev.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"wire flushes\"}}}}"
    ));
    let mut named: Vec<FlowNode> = Vec::new();
    for s in spans {
        if !named.contains(&s.from) {
            named.push(s.from);
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{} out\"}}}}",
                s.from.tid(),
                s.from.label(),
            ));
        }
        let us = |ns: u64| ns as f64 / 1000.0;
        ev.push(format!(
            "{{\"name\":\"flush → {}\",\"cat\":\"wire\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{:.3},\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"frames\":{},\"bytes\":{}}}}}",
            s.to,
            us(s.start_ns),
            us(s.dur_ns).max(0.001),
            s.from.tid(),
            s.frames,
            s.bytes,
        ));
    }
}

/// One peer's row in the `cx-obs net` table: wire totals plus the health,
/// RTT, and clock-offset state sampled at shutdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetPeerRow {
    /// The observing node (rows are grouped by observer in multiproc runs).
    pub on: String,
    /// The peer being described.
    pub peer: String,
    pub frames: u64,
    pub bytes: u64,
    pub flushes: u64,
    pub send_failures: u64,
    pub reconnects: u64,
    pub ewma_flush_ns: u64,
    /// Health score in (0, 1], 1.0 = perfectly healthy.
    pub score: f64,
    pub rtt_p50_ns: u64,
    pub rtt_p99_ns: u64,
    pub rtt_min_ns: u64,
    pub rtt_samples: u64,
    /// Peer's clock minus ours at the min-RTT probe (0 when unsampled).
    pub clock_offset_ns: i64,
    pub queue_peak: u64,
}

/// The `cx-obs net` table: every (observer, peer) pair in the run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetTable {
    pub rows: Vec<NetPeerRow>,
}

impl NetTable {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("net table serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad net table: {e:?}"))
    }

    /// Fold another process's rows in (multiproc merge at the coordinator).
    pub fn merge(&mut self, other: &NetTable) {
        self.rows.extend(other.rows.iter().cloned());
    }

    /// Fixed-width terminal rendering, one line per (observer, peer).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:<6} {:>10} {:>12} {:>8} {:>5} {:>5} {:>9} {:>9} {:>9} {:>11} {:>6} {:>6}\n",
            "on",
            "peer",
            "frames",
            "bytes",
            "flushes",
            "fail",
            "reconn",
            "rtt p50",
            "rtt p99",
            "offset",
            "ewma flush",
            "score",
            "qpeak",
        ));
        let mut rows: Vec<&NetPeerRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| (&a.on, &a.peer).cmp(&(&b.on, &b.peer)));
        for r in rows {
            let rtt = |ns: u64| {
                if r.rtt_samples == 0 {
                    "-".to_string()
                } else {
                    fmt_ns_f(ns as f64)
                }
            };
            let offset = if r.rtt_samples == 0 {
                "-".to_string()
            } else if r.clock_offset_ns < 0 {
                format!("-{}", fmt_ns_f(-r.clock_offset_ns as f64))
            } else {
                fmt_ns_f(r.clock_offset_ns as f64)
            };
            out.push_str(&format!(
                "{:<6} {:<6} {:>10} {:>12} {:>8} {:>5} {:>5} {:>9} {:>9} {:>9} {:>11} {:>6.3} {:>6}\n",
                r.on,
                r.peer,
                r.frames,
                r.bytes,
                r.flushes,
                r.send_failures,
                r.reconnects,
                rtt(r.rtt_p50_ns),
                rtt(r.rtt_p99_ns),
                offset,
                fmt_ns_f(r.ewma_flush_ns as f64),
                r.score,
                r.queue_peak,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(on: &str, peer: &str) -> NetPeerRow {
        NetPeerRow {
            on: on.into(),
            peer: peer.into(),
            frames: 1000,
            bytes: 64_000,
            flushes: 100,
            send_failures: 0,
            reconnects: 1,
            ewma_flush_ns: 45_000,
            score: 0.97,
            rtt_p50_ns: 120_000,
            rtt_p99_ns: 900_000,
            rtt_min_ns: 80_000,
            rtt_samples: 17,
            clock_offset_ns: -2_500_000,
            queue_peak: 42,
        }
    }

    #[test]
    fn net_table_round_trips_and_renders() {
        let mut t = NetTable::default();
        t.rows.push(row("srv0", "srv1"));
        let mut unsampled = row("srv1", "cli0");
        unsampled.rtt_samples = 0;
        t.rows.push(unsampled);
        let back = NetTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.rows[0].clock_offset_ns, -2_500_000);
        let text = back.render();
        assert!(text.contains("srv0"));
        assert!(
            text.contains("-2.50ms"),
            "negative offset renders signed: {text}"
        );
        // Unsampled RTT columns show '-' instead of zeros.
        let cli_line = text.lines().find(|l| l.contains("cli0")).unwrap();
        assert!(cli_line.split_whitespace().any(|w| w == "-"));
    }

    #[test]
    fn merge_concatenates_rows() {
        let mut a = NetTable::default();
        a.rows.push(row("srv0", "srv1"));
        let mut b = NetTable::default();
        b.rows.push(row("srv1", "srv0"));
        a.merge(&b);
        assert_eq!(a.rows.len(), 2);
    }

    #[test]
    fn flush_events_are_valid_json_slices() {
        let spans = [
            FlushSpan {
                from: FlowNode::Server(0),
                to: FlowNode::Server(1),
                start_ns: 10_000,
                dur_ns: 4_000,
                frames: 16,
                bytes: 1024,
            },
            FlushSpan {
                from: FlowNode::Server(0),
                to: FlowNode::Client(2),
                start_ns: 20_000,
                dur_ns: 0,
                frames: 1,
                bytes: 64,
            },
        ];
        let mut ev = Vec::new();
        chrome_flush_events(&spans, 5, &mut ev);
        assert!(ev.iter().all(|l| serde_json::parse_value(l).is_ok()));
        let slices = ev.iter().filter(|l| l.contains("\"ph\":\"X\"")).count();
        assert_eq!(slices, 2);
        // One sender → one thread_name metadata record.
        let threads = ev.iter().filter(|l| l.contains("thread_name")).count();
        assert_eq!(threads, 1);
        assert!(ev.iter().any(|l| l.contains("\"frames\":16")));
    }
}
