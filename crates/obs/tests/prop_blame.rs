//! Property tests for the blame engine: for ANY span the decomposition
//! must produce non-negative segments (guaranteed by `u64`, but the sums
//! are asserted exactly) that telescope to the client-visible latency,
//! with the suffix segments telescoping to the commitment latency —
//! including spans with disordered stamps, arbitrary edge sets, and spans
//! assembled by the shard-merge path with randomized clock offsets.

use cx_obs::flow::{FlowNode, MsgEdge, MsgKind};
use cx_obs::span::{OpSpan, Phase};
use cx_obs::{blame_span, BlameTable, ObsSink};
use cx_types::{OpClass, OpId, OpOutcome, ProcId, ServerId, SimTime};
use proptest::prelude::*;

fn op(client: u32, seq: u64) -> OpId {
    OpId::new(ProcId::new(client, 0), seq)
}

/// A span with an arbitrary subset of phases stamped at arbitrary (not
/// necessarily ordered) times. `stamps[i]` = Some(t) stamps phase i+1
/// (Issued always comes from the constructor).
fn raw_span(client: u32, issued: u64, stamps: &[Option<u64>]) -> OpSpan {
    let mut s = OpSpan::new(op(client, 1), OpClass::Create, true, SimTime(issued));
    for (i, t) in stamps.iter().enumerate() {
        if let Some(t) = t {
            // Direct writes, bypassing stamp()'s niceties: the blame
            // engine must survive stamps in any order.
            s.at_ns[i + 1] = *t;
        }
    }
    s
}

fn raw_edge(id: u64, client: u32, spec: &(u8, u8, u8, u64, u64)) -> MsgEdge {
    let (kind_i, from_i, to_i, sent, recv) = *spec;
    let node = |i: u8| {
        if i == 0 {
            FlowNode::Client(client)
        } else {
            FlowNode::Server(i as u32 - 1)
        }
    };
    MsgEdge {
        id,
        op: Some(op(client, 1)),
        kind: MsgKind::ALL[kind_i as usize % MsgKind::COUNT],
        from: node(from_i % 5),
        to: node(to_i % 5),
        sent_ns: sent,
        recv_ns: recv,
    }
}

proptest! {
    /// The core invariant under fuzzed stamps and edges: whenever a span
    /// is decomposable (Issued + Replied present), client segments sum
    /// exactly to the client window and suffix segments to the commitment
    /// window.
    #[test]
    fn segments_sum_exactly_for_random_stamps(
        issued in 0u64..1_000_000,
        stamps in prop::collection::vec(
            prop::option::of(0u64..2_000_000),
            (Phase::COUNT - 1)..Phase::COUNT),
        edges in prop::collection::vec(
            (0u8..30, 0u8..8, 0u8..8, 0u64..2_000_000, 0u64..2_000_000), 0..12),
    ) {
        let span = raw_span(3, issued, &stamps);
        let edges: Vec<MsgEdge> = edges
            .iter()
            .enumerate()
            .map(|(i, spec)| raw_edge(i as u64 + 1, 3, spec))
            .collect();
        let refs: Vec<&MsgEdge> = edges.iter().collect();
        match blame_span(&span, &refs) {
            Some(b) => {
                prop_assert!(b.check().is_ok(), "{:?}", b.check());
                let client: u64 = b.segs[..7].iter().sum();
                let replied = span.at(Phase::Replied).unwrap().max(issued);
                prop_assert_eq!(client, replied - issued);
                let suffix: u64 = b.segs[7..].iter().sum();
                prop_assert_eq!(suffix, b.commit_ns);
                // Chain rows re-sum to the same totals.
                let chain: u64 = b.chain.iter().map(|c| c.dur_ns).sum();
                prop_assert_eq!(chain, client + suffix);
            }
            None => {
                // Only legitimate when the reply milestone is missing.
                prop_assert!(span.at(Phase::Replied).is_none());
            }
        }
    }

    /// Shard-merge path: a coordinator recorder absorbs server-side
    /// stamps and edges recorded on a skewed clock. Every merged span must
    /// still decompose with exact sums, and the aggregated table must
    /// cover every replied op.
    #[test]
    fn shard_merged_spans_still_sum(
        offset in -3_000_000i64..3_000_000,
        n_ops in 1usize..8,
        exec_at in 2_000u64..50_000,
        reply_gap in 1u64..10_000,
    ) {
        let coord = ObsSink::recording("cx");
        let shard = ObsSink::recording("cx");
        for i in 0..n_ops as u64 {
            let o = op(2, i);
            let t0 = i * 1_000;
            coord.op_issued(o, OpClass::Mkdir, true, SimTime(t0));
            coord.op_phase(o, Phase::Dispatched, SimTime(t0 + 100), None);
            // The shard's clock runs `offset` ahead of the coordinator's.
            let shard_exec = (t0 + exec_at) as i64 + offset;
            if shard_exec >= 0 {
                shard.op_issued(o, OpClass::Mkdir, true, SimTime(t0));
                shard.op_phase(
                    o,
                    Phase::Executed,
                    SimTime(shard_exec as u64),
                    Some(ServerId(1)),
                );
                shard.msg_edge(
                    Some(o),
                    MsgKind::SubOpResp,
                    FlowNode::Server(1),
                    FlowNode::Client(2),
                    shard_exec as u64,
                    shard_exec as u64 + 50,
                );
            }
            coord.op_replied(
                o,
                SimTime(t0 + exec_at + reply_gap),
                OpOutcome::Applied,
                false,
            );
        }
        let (spans, edges) = shard.export_shard();
        coord.absorb_shard(&spans, &edges, offset);
        let (merged, merged_edges) = coord.export_shard();
        for span in &merged {
            prop_assert!(span.check_accounting().is_ok());
            let refs: Vec<&MsgEdge> = merged_edges
                .iter()
                .filter(|e| e.op == Some(span.op))
                .collect();
            let b = blame_span(span, &refs).expect("replied span decomposes");
            prop_assert!(b.check().is_ok(), "{:?}", b.check());
        }
        let table = BlameTable::from_spans("cx", &merged, &merged_edges);
        prop_assert_eq!(table.ops, n_ops as u64);
    }

    /// Merging two tables is equivalent to building one from the union:
    /// per-segment histogram moments must match exactly.
    #[test]
    fn table_merge_matches_union(
        lat_a in prop::collection::vec(100u64..1_000_000, 1..20),
        lat_b in prop::collection::vec(100u64..1_000_000, 1..20),
    ) {
        let build = |lats: &[u64], base: u64| -> Vec<OpSpan> {
            lats.iter()
                .enumerate()
                .map(|(i, &lat)| {
                    let t0 = base + i as u64 * 2_000_000;
                    let mut s =
                        OpSpan::new(op(1, base + i as u64), OpClass::Link, true, SimTime(t0));
                    s.stamp(Phase::Dispatched, SimTime(t0 + lat / 4), None);
                    s.stamp(Phase::Executed, SimTime(t0 + lat / 2), Some(ServerId(0)));
                    s.stamp(Phase::Replied, SimTime(t0 + lat), None);
                    s
                })
                .collect()
        };
        let sa = build(&lat_a, 0);
        let sb = build(&lat_b, 1_000_000_000);
        let mut union = sa.clone();
        union.extend(sb.iter().cloned());
        let ta = BlameTable::from_spans("cx", &sa, &[]);
        let tb = BlameTable::from_spans("cx", &sb, &[]);
        let tu = BlameTable::from_spans("cx", &union, &[]);
        let mut merged = ta.clone();
        merged.merge(&tb);
        prop_assert_eq!(merged.ops, tu.ops);
        prop_assert_eq!(merged.client_total.sum, tu.client_total.sum);
        for (m, u) in merged.segs.iter().zip(&tu.segs) {
            prop_assert_eq!(m.hist.sum, u.hist.sum, "segment {}", m.seg.name());
            prop_assert_eq!(m.hist.count, u.hist.count);
        }
    }
}
