//! Property tests for `LogHistogram` against a sorted-vec oracle: any
//! reported percentile must land in the same log-bucket as the exact
//! rank-order statistic, merging must equal combined recording, and the
//! moment fields (count/sum/min/max) must be exact.

use cx_obs::hist::{bucket_of, LogHistogram};
use proptest::prelude::*;

fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn check_quantiles(h: &LogHistogram, mut values: Vec<u64>) -> Result<(), TestCaseError> {
    values.sort_unstable();
    for q in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
        let exact = oracle_percentile(&values, q);
        let got = h.percentile(q);
        // The reported quantile is the bucket's upper bound (capped at
        // max), so it shares the exact value's bucket or is the cap.
        prop_assert!(
            bucket_of(got) == bucket_of(exact) || got == h.max,
            "q={}: got {} (bucket {}), exact {} (bucket {})",
            q,
            got,
            bucket_of(got),
            exact,
            bucket_of(exact)
        );
        prop_assert!(got >= exact || bucket_of(got) == bucket_of(exact));
    }
    Ok(())
}

proptest! {
    #[test]
    fn quantiles_match_sorted_vec_oracle(
        values in prop::collection::vec(0u64..2_000_000_000, 1..300)
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.sum, values.iter().sum::<u64>());
        prop_assert_eq!(h.max, *values.iter().max().unwrap());
        prop_assert_eq!(h.min, *values.iter().min().unwrap());
        check_quantiles(&h, values)?;
    }

    #[test]
    fn merge_equals_combined_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..150),
        b in prop::collection::vec(0u64..1_000_000_000, 0..150)
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hc = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hc);
        if !a.is_empty() || !b.is_empty() {
            let mut all = a.clone();
            all.extend_from_slice(&b);
            check_quantiles(&ha, all)?;
        }
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        values in prop::collection::vec(0u64..10_000_000, 1..200)
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0u64;
        for q in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let p = h.percentile(q);
            prop_assert!(p >= last, "p({}) = {} < {}", q, p, last);
            last = p;
        }
        prop_assert_eq!(h.percentile(100.0), h.max);
    }
}
