//! Loopback equivalence: the TCP runtime must reproduce the threaded
//! runtime's tie-insensitive totals for all four engine families on the
//! same workload (ISSUE 7 satellite 3), with the DES as a second oracle
//! for the schedule-independent counters.
//!
//! "Tie-insensitive" draws the line at scheduling ties: counters fixed by
//! the workload and placement (`ops_total`, `cross_ops`, the
//! applied+failed closure) must match *exactly*; counters that depend on
//! which of two racing operations a server saw first (applied vs failed
//! split, conflicts, retried sub-op executions) get a small band, the
//! same `max(2, total/50)` shape the perf-baseline CI gate uses.

use cx_cluster::des::run_trace;
use cx_cluster::{RunStats, TcpCluster, TcpOptions, ThreadedCluster};
use cx_net::PlaneConfig;
use cx_types::{BatchTrigger, ClusterConfig, NetTuning, Protocol};
use cx_workloads::{Trace, TraceBuilder, TraceProfile};

fn fast_cfg(servers: u32, protocol: Protocol) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(servers, protocol);
    // wall-clock triggers must be short in tests
    cfg.cx.trigger = BatchTrigger::Timeout {
        period_ns: 5_000_000, // 5 ms
    };
    cfg.cx.hint_mismatch_timeout_ns = 20_000_000;
    cfg
}

fn home2_prefix() -> Trace {
    TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
        .scale(0.0003)
        .build()
}

fn band(total: u64) -> u64 {
    (total / 50).max(2)
}

fn assert_tie_insensitive_match(tcp: &RunStats, other: &RunStats, label: &str) {
    assert_eq!(tcp.ops_total, other.ops_total, "{label}: ops_total");
    assert_eq!(tcp.cross_ops, other.cross_ops, "{label}: cross_ops");
    assert_eq!(
        tcp.ops_applied + tcp.ops_failed,
        tcp.ops_total,
        "{label}: tcp applied+failed closure"
    );
    assert_eq!(
        other.ops_applied + other.ops_failed,
        other.ops_total,
        "{label}: oracle applied+failed closure"
    );
    let b = band(tcp.ops_total);
    assert!(
        tcp.ops_applied.abs_diff(other.ops_applied) <= b,
        "{label}: applied {} vs {} beyond band {b}",
        tcp.ops_applied,
        other.ops_applied,
    );
    assert!(
        tcp.ops_failed.abs_diff(other.ops_failed) <= b,
        "{label}: failed {} vs {} beyond band {b}",
        tcp.ops_failed,
        other.ops_failed,
    );
}

#[test]
fn tcp_loopback_matches_threaded_for_all_four_engines() {
    let trace = home2_prefix();
    for protocol in [Protocol::Cx, Protocol::Se, Protocol::TwoPc, Protocol::Ce] {
        let tcp = TcpCluster::run(fast_cfg(4, protocol), &trace);
        let thr = ThreadedCluster::run(fast_cfg(4, protocol), &trace);
        assert_eq!(tcp.violations, vec![], "{protocol:?}: tcp atomicity");
        assert_eq!(thr.violations, vec![], "{protocol:?}: threaded atomicity");
        assert_eq!(
            tcp.stats.ops_total,
            trace.ops.len() as u64,
            "{protocol:?}: every op completed over TCP"
        );
        assert_tie_insensitive_match(&tcp.stats, &thr.stats, &format!("{protocol:?} vs threaded"));

        // Work actually happened on the wire side, at the same order of
        // magnitude: sub-op executions are retry-sensitive, so a wide
        // sanity band rather than equality.
        let (a, b) = (
            tcp.stats.server_stats.subops_executed,
            thr.stats.server_stats.subops_executed,
        );
        assert!(a > 0, "{protocol:?}: tcp executed sub-ops");
        assert!(
            a.abs_diff(b) <= (a.max(b) / 4).max(8),
            "{protocol:?}: subops_executed {a} vs {b} diverge"
        );
    }
}

#[test]
fn tcp_loopback_matches_des_oracle_for_cx() {
    let trace = home2_prefix();
    // The DES runs the same engines on virtual time with the default
    // (virtual-seconds) triggers; schedule-independent totals must agree
    // with the wall-clock TCP run regardless.
    let tcp = TcpCluster::run(fast_cfg(4, Protocol::Cx), &trace);
    let (des_stats, des_violations) = run_trace(ClusterConfig::new(4, Protocol::Cx), &trace);
    assert_eq!(tcp.violations, vec![]);
    assert_eq!(des_violations, vec![]);
    assert_tie_insensitive_match(&tcp.stats, &des_stats, "Cx vs DES");
}

#[test]
fn tcp_reconnect_mid_run_keeps_equivalence() {
    // The drill drops every coordinator connection mid-run; the totals
    // must still close (lossless reconnect) and match the threaded run.
    let trace = home2_prefix();
    let opts = TcpOptions {
        drop_conns_after_ops: Some(trace.ops.len() as u64 / 4),
        ..TcpOptions::default()
    };
    let tcp = TcpCluster::run_stream_opts(fast_cfg(4, Protocol::Cx), trace.to_stream(), opts);
    let thr = ThreadedCluster::run(fast_cfg(4, Protocol::Cx), &trace);
    assert_eq!(tcp.violations, vec![]);
    assert!(tcp.reconnects >= 1, "the drill must force a re-dial");
    assert_tie_insensitive_match(&tcp.stats, &thr.stats, "Cx reconnect vs threaded");
}

#[test]
fn tcp_reconnect_under_aggressive_corking_stays_lossless() {
    // ISSUE 8: kill connections while writers are mid-coalesced-batch.
    // Aggressive corking (huge size threshold, a deadline several times
    // the message latency) maximizes the window where frames sit encoded
    // but unflushed; the drop drill then severs every coordinator
    // connection mid-run. The retained-batch re-encode on the next
    // connection generation must keep the run lossless and per-peer FIFO:
    // totals close exactly and match the threaded oracle.
    let trace = home2_prefix();
    let opts = TcpOptions {
        drop_conns_after_ops: Some(trace.ops.len() as u64 / 4),
        net: PlaneConfig {
            backoff_base: std::time::Duration::from_millis(1),
            tuning: NetTuning {
                cork_bytes: 1 << 20,
                cork_deadline_ns: 2_000_000, // 2 ms of corked exposure
                ..NetTuning::default()
            },
            ..PlaneConfig::default()
        },
        ..TcpOptions::default()
    };
    let tcp = TcpCluster::run_stream_opts(fast_cfg(4, Protocol::Cx), trace.to_stream(), opts);
    let thr = ThreadedCluster::run(fast_cfg(4, Protocol::Cx), &trace);
    assert_eq!(tcp.violations, vec![], "corked reconnect: atomicity");
    assert!(tcp.reconnects >= 1, "the corked drill must force a re-dial");
    assert_eq!(
        tcp.stats.ops_total,
        trace.ops.len() as u64,
        "corked reconnect: every op completed (no coalesced frame lost)"
    );
    assert_tie_insensitive_match(&tcp.stats, &thr.stats, "Cx corked reconnect vs threaded");
    // Corking must have actually coalesced: across the coordinator's
    // peers, strictly fewer flushes than frames.
    let (frames, flushes) = tcp.health.iter().fold((0u64, 0u64), |(f, fl), (_, h)| {
        (f + h.sends, fl + h.flushes)
    });
    assert!(
        flushes < frames,
        "corking produced no coalescing: {flushes} flushes for {frames} frames"
    );
}
