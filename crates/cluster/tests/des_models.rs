//! Tests of the simulation's physical models: network latency, CPU
//! queueing, disk timing, message accounting, and crash scheduling.

use cx_cluster::des::{run_trace, CrashPlan, DesCluster};
use cx_types::{BatchTrigger, ClusterConfig, Protocol, ServerId, DUR_MS, DUR_US};
use cx_workloads::{Metarates, MetaratesMix, Trace, TraceBuilder, TraceProfile};

fn small_trace() -> Trace {
    TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
        .scale(0.002)
        .build()
}

#[test]
fn network_latency_slows_the_replay() {
    let trace = small_trace();
    let run = |one_way_us: u64| {
        let mut cfg = ClusterConfig::new(8, Protocol::Cx);
        cfg.net.one_way_ns = one_way_us * DUR_US;
        let (stats, v) = run_trace(cfg, &trace);
        assert!(v.is_empty());
        stats.replay
    };
    let fast = run(10);
    let slow = run(2_000);
    assert!(
        slow > fast,
        "2 ms links must be slower than 10 µs links ({slow} vs {fast})"
    );
}

#[test]
fn cpu_cost_slows_the_replay() {
    let trace = small_trace();
    let run = |per_msg_us: u64| {
        let mut cfg = ClusterConfig::new(8, Protocol::Cx);
        cfg.cpu.per_msg_ns = per_msg_us * DUR_US;
        let (stats, v) = run_trace(cfg, &trace);
        assert!(v.is_empty());
        stats.replay
    };
    assert!(run(500) > run(5));
}

#[test]
fn slower_disks_hurt_the_sync_baseline_more() {
    let trace = small_trace();
    let run = |protocol, sync_ms: u64| {
        let mut cfg = ClusterConfig::new(8, protocol);
        cfg.disk.db_sync_write_ns = sync_ms * DUR_MS;
        let (stats, v) = run_trace(cfg, &trace);
        assert!(v.is_empty());
        stats.replay.as_secs_f64()
    };
    let se_penalty = run(Protocol::Se, 8) / run(Protocol::Se, 1);
    let cx_penalty = run(Protocol::Cx, 8) / run(Protocol::Cx, 1);
    assert!(
        se_penalty > cx_penalty,
        "OFS pays sync writes per sub-op; Cx does not ({se_penalty:.2}x vs {cx_penalty:.2}x)"
    );
}

#[test]
fn message_accounting_is_consistent() {
    let trace = small_trace();
    let (stats, _) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
    assert_eq!(
        stats.total_msgs(),
        stats.client_msgs + stats.server_msgs,
        "every message is either client-facing or server-to-server"
    );
    // execution phase: one request and one response per sub-op assignment
    let reqs = stats
        .msgs
        .get(&cx_types::MsgKind::SubOpReq)
        .copied()
        .unwrap();
    let resps = stats
        .msgs
        .get(&cx_types::MsgKind::SubOpResp)
        .copied()
        .unwrap();
    assert!(resps >= reqs - stats.server_stats.invalidations);
}

#[test]
fn timeline_is_time_ordered() {
    let trace = TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
        .scale(0.005)
        .build();
    let mut cfg = ClusterConfig::new(8, Protocol::Cx);
    cfg.cx.trigger = BatchTrigger::Timeout {
        period_ns: 100 * DUR_MS,
    };
    let (stats, _) = run_trace(cfg, &trace);
    for w in stats.timeline.windows(2) {
        assert!(w[1].at_secs >= w[0].at_secs);
        assert!(w[0].mean_bytes <= w[0].max_bytes);
    }
    assert!(stats.peak_valid_bytes >= stats.timeline.iter().map(|s| s.max_bytes).max().unwrap());
}

#[test]
fn crash_plan_triggers_at_the_target() {
    let trace = TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
        .scale(0.01)
        .tweak(|p| p.shared_access_prob = 0.0)
        .build();
    let mut cfg = ClusterConfig::new(4, Protocol::Cx);
    cfg.cx.trigger = BatchTrigger::Never;
    cfg.cx.log_limit_bytes = None;
    let report = DesCluster::new(cfg, &trace)
        .with_crash(CrashPlan {
            server: ServerId(2),
            valid_bytes_target: 40 << 10,
            detection_ns: 50 * DUR_MS,
            reboot_ns: 20 * DUR_MS,
        })
        .run_recovery_experiment()
        .expect("40 KB accumulates");
    let cycle = report.first().expect("one completed cycle");
    assert_eq!(cycle.server, ServerId(2));
    assert!(cycle.valid_bytes_at_crash >= 40 << 10);
    assert!(cycle.recovery_started.since(cycle.crashed_at) >= 70 * DUR_MS);
    assert!(cycle.recovery_finished > cycle.recovery_started);
    assert!(cycle.scanned_bytes > 0);
}

#[test]
fn recovery_experiment_is_deterministic() {
    let trace = TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
        .scale(0.008)
        .tweak(|p| p.shared_access_prob = 0.0)
        .build();
    let run = || {
        let mut cfg = ClusterConfig::new(4, Protocol::Cx);
        cfg.cx.trigger = BatchTrigger::Never;
        cfg.cx.log_limit_bytes = None;
        DesCluster::new(cfg, &trace)
            .with_crash(CrashPlan {
                server: ServerId(0),
                valid_bytes_target: 20 << 10,
                detection_ns: 10 * DUR_MS,
                reboot_ns: 10 * DUR_MS,
            })
            .run_recovery_experiment()
            .expect("20 KB accumulates")
    };
    let (a, b) = (run(), run());
    let (a, b) = (a.first().unwrap(), b.first().unwrap());
    assert_eq!(a.crashed_at, b.crashed_at);
    assert_eq!(a.recovery_finished, b.recovery_finished);
    assert_eq!(a.scanned_bytes, b.scanned_bytes);
}

#[test]
fn failure_injection_flows_through_the_stack() {
    let trace = Metarates::new(MetaratesMix::UpdateDominated, 16)
        .seed_files(100)
        .ops_per_proc(40)
        .build();
    let mut cfg = ClusterConfig::new(4, Protocol::Cx);
    cfg.failure.subop_fail_prob = 0.02;
    let (stats, violations) = run_trace(cfg, &trace);
    assert_eq!(violations, vec![], "aborts must stay atomic");
    assert!(stats.ops_failed > 0, "injected failures must surface");
    assert!(
        stats.server_stats.ops_aborted > 0,
        "disagreements must abort via commitments"
    );
    assert_eq!(stats.ops_stuck, 0);
}

#[test]
fn cross_latency_exceeds_overall_latency() {
    let trace = small_trace();
    let (stats, _) = run_trace(ClusterConfig::new(8, Protocol::Se), &trace);
    assert!(
        stats.cross_latency.mean_ns() > stats.latency.mean_ns(),
        "cross-server ops are the slow ones under serial execution"
    );
    assert_eq!(
        stats.cross_latency.count, stats.cross_ops,
        "every cross-server op contributes one latency sample"
    );
}
