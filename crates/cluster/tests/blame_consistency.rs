//! DES-vs-TCP blame-table consistency on the equivalence scenario
//! (ISSUE 10 satellite 4): both runtimes decompose the same workload into
//! the same blame structure — every replied op accounted, client segments
//! summing to the client window — and the decomposition exhibits the
//! paper's figure-5 split: Cx carries its commitment time in the off-path
//! suffix, 2PC carries it on-path inside the client-visible window.

use cx_cluster::{DesCluster, ObsSink, TcpCluster, TcpOptions};
use cx_obs::{blame_span, BlameTable, Seg};
use cx_types::{BatchTrigger, ClusterConfig, Protocol};
use cx_workloads::{Trace, TraceBuilder, TraceProfile};

fn fast_cfg(servers: u32, protocol: Protocol) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(servers, protocol);
    cfg.cx.trigger = BatchTrigger::Timeout {
        period_ns: 5_000_000, // 5 ms — wall-clock safe
    };
    cfg.cx.hint_mismatch_timeout_ns = 20_000_000;
    cfg
}

fn home2_prefix() -> Trace {
    TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
        .scale(0.0003)
        .build()
}

fn des_blame(protocol: Protocol, trace: &Trace) -> (BlameTable, u64) {
    let sink = ObsSink::recording(format!("{protocol:?}").to_lowercase());
    let (stats, violations) = DesCluster::new(fast_cfg(4, protocol), trace)
        .with_obs(sink)
        .run();
    assert_eq!(violations, vec![], "{protocol:?}: DES atomicity");
    (
        stats.blame.expect("obs DES run attaches a blame table"),
        stats.ops_total,
    )
}

fn tcp_blame(protocol: Protocol, trace: &Trace) -> (BlameTable, u64) {
    let opts = TcpOptions {
        obs: ObsSink::recording(format!("{protocol:?}").to_lowercase()),
        ..TcpOptions::default()
    };
    let r = TcpCluster::run_stream_opts(fast_cfg(4, protocol), trace.to_stream(), opts);
    assert_eq!(r.violations, vec![], "{protocol:?}: TCP atomicity");
    (
        r.stats.blame.expect("obs TCP run attaches a blame table"),
        r.stats.ops_total,
    )
}

/// Structural checks both runtimes' tables must pass identically.
fn assert_table_shape(t: &BlameTable, ops_total: u64, label: &str) {
    assert_eq!(
        t.ops, ops_total,
        "{label}: every completed op decomposed (got {} of {ops_total})",
        t.ops
    );
    assert_eq!(
        t.client_total.count, t.ops,
        "{label}: client window histogram covers every blamed op"
    );
    // The causal walk, not the coarse fallback, must carry the table:
    // both runtimes record request/response edges for every op.
    assert!(
        t.fallback_ops <= t.ops / 2,
        "{label}: {} of {} ops needed the phase-window fallback",
        t.fallback_ops,
        t.ops
    );
    // Work segments that any run of this workload must exhibit.
    for seg in [Seg::Execute, Seg::ReqWire] {
        assert!(
            t.segs[seg.index()].hist.count > 0,
            "{label}: segment {} never attributed",
            seg.name()
        );
    }
    assert!(!t.exemplars.is_empty(), "{label}: tail exemplars mined");
}

#[test]
fn des_and_tcp_blame_tables_agree_structurally_for_cx() {
    let trace = home2_prefix();
    let (des, des_ops) = des_blame(Protocol::Cx, &trace);
    let (tcp, tcp_ops) = tcp_blame(Protocol::Cx, &trace);
    assert_eq!(des_ops, tcp_ops, "equivalence scenario: same op count");
    assert_table_shape(&des, des_ops, "Cx DES");
    assert_table_shape(&tcp, tcp_ops, "Cx TCP");

    // The paper's claim, in both runtimes: Cx commitment runs OFF the
    // client-visible path. The off-path suffix must dominate whatever
    // commit-class traffic leaked into the client window.
    for (t, label) in [(&des, "DES"), (&tcp, "TCP")] {
        assert!(
            t.commit_total.count > 0,
            "Cx {label}: off-path commitment suffix recorded"
        );
        let off_path: u64 = Seg::SUFFIX.iter().map(|s| t.segs[s.index()].hist.sum).sum();
        let on_path = t.segs[Seg::CommitOnPath.index()].hist.sum;
        assert!(
            off_path > on_path,
            "Cx {label}: commitment must sit off-path \
             (off {off_path} <= on {on_path})"
        );
    }
}

#[test]
fn twopc_blame_puts_commitment_on_path_in_both_runtimes() {
    let trace = home2_prefix();
    let (des, des_ops) = des_blame(Protocol::TwoPc, &trace);
    let (tcp, tcp_ops) = tcp_blame(Protocol::TwoPc, &trace);
    assert_eq!(des_ops, tcp_ops);
    assert_table_shape(&des, des_ops, "2PC DES");
    assert_table_shape(&tcp, tcp_ops, "2PC TCP");

    // 2PC votes before replying: commitment is ON the client-visible path
    // and there is no off-path suffix in either runtime.
    for (t, label) in [(&des, "DES"), (&tcp, "TCP")] {
        assert!(
            t.segs[Seg::CommitOnPath.index()].hist.count > 0,
            "2PC {label}: on-path commitment attributed"
        );
        assert_eq!(
            t.commit_total.count, 0,
            "2PC {label}: no off-path commitment suffix"
        );
    }
}

#[test]
fn blame_invariant_holds_for_every_sampled_span_in_both_runtimes() {
    // The acceptance-criterion form of the invariant: re-derive per-op
    // blame from each runtime's exported report and check() every one.
    let trace = home2_prefix();
    for protocol in [Protocol::Cx, Protocol::TwoPc] {
        let sink = ObsSink::recording(format!("{protocol:?}").to_lowercase());
        let (_, violations) = DesCluster::new(fast_cfg(4, protocol), &trace)
            .with_obs(sink.clone())
            .run();
        assert_eq!(violations, vec![]);
        let rep = sink.report().expect("recording sink yields a report");
        let mut decomposed = 0u64;
        for span in &rep.spans {
            let edges: Vec<&cx_obs::MsgEdge> =
                rep.edges.iter().filter(|e| e.op == Some(span.op)).collect();
            if let Some(b) = blame_span(span, &edges) {
                b.check().unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
                decomposed += 1;
            }
        }
        assert!(decomposed > 0, "{protocol:?}: spans decomposed");
    }
}
