//! Calibration probe: prints the headline protocol ratios the disk and
//! network constants were tuned against (see DESIGN.md §2 and
//! EXPERIMENTS.md). Useful when adjusting `DiskConfig`/`NetConfig`
//! defaults: run before and after and compare against the paper's bands.
//!
//!     cargo run --release -p cx-cluster --example calib [scale]

use cx_cluster::des::run_trace;
use cx_types::{ClusterConfig, Protocol};
use cx_workloads::{Metarates, MetaratesMix, TraceBuilder, TraceProfile};
use std::collections::BTreeMap;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    println!(
        "trace replays at 8 servers (paper bands: Cx >=38%, batched >=15%, Cx-over-batched >=16%)"
    );
    for name in ["CTH", "s3d", "home2"] {
        let trace = TraceBuilder::new(TraceProfile::by_name(name).expect("known"))
            .scale(scale)
            .build();
        let mut r = BTreeMap::new();
        for protocol in [Protocol::Se, Protocol::SeBatched, Protocol::Cx] {
            let (stats, v) = run_trace(ClusterConfig::new(8, protocol), &trace);
            assert!(v.is_empty(), "{name} {protocol:?}: {v:?}");
            assert_eq!(stats.ops_stuck, 0);
            r.insert(protocol.name(), stats.replay_secs());
        }
        let (se, ba, cx) = (r["OFS"], r["OFS-batched"], r["OFS-Cx"]);
        println!(
            "  {name:8} SE={se:.3}s batched={ba:.3}s ({:+.0}%) Cx={cx:.3}s ({:+.0}% vs OFS, {:+.0}% vs batched)",
            (1.0 - ba / se) * 100.0,
            (1.0 - cx / se) * 100.0,
            (1.0 - cx / ba) * 100.0
        );
    }

    println!("\nmetarates at 8 servers (paper: >=70% update-dominated, >=40% read-dominated)");
    for mix in [MetaratesMix::ReadDominated, MetaratesMix::UpdateDominated] {
        let trace = Metarates::new(mix, 8 * 4 * 8)
            .seed_files(4000)
            .ops_per_proc(60)
            .build();
        let mut r = BTreeMap::new();
        for protocol in [Protocol::Se, Protocol::SeBatched, Protocol::Cx] {
            let (stats, v) = run_trace(ClusterConfig::new(8, protocol), &trace);
            assert!(v.is_empty());
            r.insert(protocol.name(), stats.throughput());
        }
        let (se, ba, cx) = (r["OFS"], r["OFS-batched"], r["OFS-Cx"]);
        println!(
            "  {:16} SE={se:.0} batched={ba:.0} ({:+.0}%) Cx={cx:.0} op/s ({:+.0}% vs OFS)",
            mix.name(),
            (ba / se - 1.0) * 100.0,
            (cx / se - 1.0) * 100.0
        );
    }
}
