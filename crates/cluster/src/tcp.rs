//! The TCP runtime: the same sans-IO engines over real loopback sockets.
//!
//! Structurally a sibling of [`crate::threaded`] — one engine thread per
//! metadata server, synchronous client threads pulling from a shared
//! [`OpFeed`] — but every message crosses a real TCP connection through
//! `cx-net`'s [`ConnectionManager`]: length-prefixed wire frames, per-peer
//! writer threads with bounded (backpressuring) outbound queues, reconnect
//! with exponential backoff, per-peer health scoring. The engines cannot
//! tell; the DES remains the oracle for what the totals must be.
//!
//! Two deployment shapes share all of this code:
//!
//! * **in-process loopback** ([`TcpCluster::run_stream`]) — every server
//!   node lives on its own thread in this process, with a shared
//!   [`AddrBook`]; the integration tests and `perf_baseline --net tcp`
//!   use this.
//! * **multi-process** ([`TcpCluster::run_external`] + [`serve_one`]) —
//!   one OS process per server (`cx_net_server`); the coordinator knows
//!   only their socket addresses and gossips the peer map with a
//!   [`Frame::Peers`] frame so servers can dial each other.
//!
//! Control traffic (quiesce/probe/stop) rides the same connections as
//! protocol messages, so the threaded runtime's drain protocol works
//! unchanged: quiesce rounds until every server reports quiesced, then a
//! `Stop` whose `StopResp` carries the server's stats as JSON plus a
//! binary snapshot of its [`MetaStore`] rows for the coordinator-side
//! [`GlobalView`] atomicity check.

use crate::feed::OpFeed;
use crate::stats::RunStats;
use crate::threaded::{seed_engine, LiveMetrics};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use cx_mdstore::{GlobalView, MetaStore, Violation};
use cx_net::{
    AddrBook, ClockSync, ConnectionManager, Frame, HealthSnapshot, NodeId, PlaneConfig,
    WireTelemetry, WireTotals,
};
use cx_obs::registry::{Counter, Gauge, MetricRegistry, Series};
use cx_obs::{FlowNode, MsgEdge, NetPeerRow, NetTable, ObsConfig, ObsSink, OpSpan, Phase};
use cx_protocol::{
    Action, ClientDecision, ClientOp, Endpoint, ProtoMetrics, ServerEngine, ServerStats,
};
use cx_sim::TimerQueue;
use cx_types::{
    ClusterConfig, FileKind, InodeNo, MsgKind, Name, OpId, OpOutcome, Payload, Placement, ProcId,
    Protocol, ServerId, SimTime, VecPool,
};
use cx_workloads::{SeedEntry, StreamTrace, Trace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Map a protocol endpoint onto the wire node that hosts it: servers are
/// their own nodes; every client proc lives on the single client host.
fn node_of(ep: Endpoint) -> NodeId {
    match ep {
        Endpoint::Server(s) => NodeId::Server(s.0),
        Endpoint::Proc(_) => NodeId::ClientHost(0),
    }
}

fn flow_of(ep: Endpoint) -> FlowNode {
    match ep {
        Endpoint::Server(s) => FlowNode::Server(s.0),
        Endpoint::Proc(p) => FlowNode::Client(p.client.0),
    }
}

/// Per-server report shipped inside [`Frame::StopResp`]'s `stats_json`.
/// JSON (not wire-encoded) deliberately: it reuses the existing serde
/// derives on [`ServerStats`]/[`ProtoMetrics`] and stays inspectable on
/// the wire; `msgs` is the flat per-[`MsgKind`] send counter.
#[derive(Serialize, Deserialize)]
struct WireReport {
    stats: ServerStats,
    proto: ProtoMetrics,
    msgs: Vec<u64>,
    server_msgs: u64,
    client_msgs: u64,
    /// Wall-clock span shard + message edges from a shard-mode obs sink
    /// (external `cx_net_server` processes only — loopback nodes stamp
    /// straight into the coordinator's shared sink and ship nothing).
    /// Stamps are on the child's epoch clock; the coordinator corrects
    /// them by the probe-estimated offset before merging.
    spans: Vec<OpSpan>,
    edges: Vec<MsgEdge>,
    /// This node's wire-plane telemetry: flush/queue/stall histograms and
    /// (when enabled) the per-flush span log.
    telem: WireTelemetry,
    /// Per-peer health rows (`(peer label, snapshot)`) — the node's
    /// contribution to the cluster-wide `cx-obs net` table; the
    /// coordinator fills in the `on` column from the responding node.
    peers: Vec<(String, HealthSnapshot)>,
}

/// Options for a TCP run.
pub struct TcpOptions {
    /// Observability sink installed into every in-process engine and
    /// client (external server processes run with their own sinks off).
    pub obs: ObsSink,
    /// Wire-plane tuning (backoff plus the [`cx_types::NetTuning`]
    /// coalescing/corking/queue knobs).
    pub net: PlaneConfig,
    /// Live metric exposition, exactly as in the threaded runtime.
    pub live: Option<LiveMetrics>,
    /// Reconnect drill: after this many completed client operations, drop
    /// the coordinator's connection to every server once, mid-run. The
    /// run must still complete losslessly (pending frames are retained
    /// and re-sent after the backoff re-dial); `TcpRunResult::reconnects`
    /// reports the re-dials observed.
    pub drop_conns_after_ops: Option<u64>,
    /// OS threads hosting the logical clients (`0` = auto). Each logical
    /// client stays strictly synchronous — one op in flight, per-client
    /// FIFO — but several clients share one *shepherd* thread, so a
    /// single wakeup drains a batch of replies and refills a batch of
    /// requests back-to-back into the wire queue. On a box with few
    /// hardware threads this is the difference between one futex wake
    /// per reply and one per batch.
    pub client_threads: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            obs: ObsSink::Off,
            net: PlaneConfig::default(),
            live: None,
            drop_conns_after_ops: None,
            client_threads: 0,
        }
    }
}

/// Result of a TCP run: the same shape as a threaded run, plus the wire
/// plane's operational counters.
pub struct TcpRunResult {
    pub stats: RunStats,
    pub violations: Vec<Violation>,
    pub wall: Duration,
    /// Successful re-dials after a lost or dropped connection
    /// (coordinator side).
    pub reconnects: u64,
    /// Final health snapshot per peer the coordinator talked to.
    pub health: Vec<(NodeId, HealthSnapshot)>,
    /// Frames/bytes/flushes summed across every in-process connection
    /// manager (coordinator + loopback servers); external `cx_net_server`
    /// processes keep their counters to themselves.
    pub wire: WireTotals,
    /// Cluster-wide wall-clock wire telemetry: the coordinator's own
    /// histograms merged with every server's `StopResp`-shipped ones
    /// (loopback and external alike), flush-span stamps offset-corrected
    /// onto the coordinator's clock. Attach `telem.flush_spans` to an
    /// [`cx_obs::ObsReport`]'s `flushes` to get the Perfetto wire tracks.
    pub telem: WireTelemetry,
    /// Every node's view of every peer it talked to — rendered by
    /// `cx-obs net`.
    pub net: NetTable,
}

/// The TCP cluster runtime.
pub struct TcpCluster;

impl TcpCluster {
    /// Run `trace` over in-process loopback TCP.
    pub fn run(cfg: ClusterConfig, trace: &Trace) -> TcpRunResult {
        Self::run_stream(cfg, trace.to_stream())
    }

    /// Streamed form over in-process loopback TCP.
    pub fn run_stream(cfg: ClusterConfig, st: StreamTrace) -> TcpRunResult {
        Self::run_stream_opts(cfg, st, TcpOptions::default())
    }

    /// In-process loopback with explicit options.
    pub fn run_stream_opts(cfg: ClusterConfig, st: StreamTrace, opts: TcpOptions) -> TcpRunResult {
        run_inner(cfg, st, opts, None)
    }

    /// Multi-process form: the servers are external processes (started
    /// via [`serve_one`], typically the `cx_net_server` binary) already
    /// listening on `addrs[i]` for `ServerId(i)`. The coordinator gossips
    /// the full peer map to every server, then drives the identical
    /// client/drain/stop protocol over the wire.
    pub fn run_external(
        cfg: ClusterConfig,
        st: StreamTrace,
        addrs: &[SocketAddr],
        opts: TcpOptions,
    ) -> TcpRunResult {
        run_inner(cfg, st, opts, Some(addrs.to_vec()))
    }
}

/// Serve one metadata server over TCP until the coordinator sends `Stop`:
/// the body of the `cx_net_server` process. Binds an ephemeral loopback
/// port, reports it through `on_listen` (the parent reads it from stdout),
/// then runs the engine loop. Peer addresses arrive over the wire: the
/// coordinator's `Hello` registers the client host, a `Peers` frame names
/// the other servers.
pub fn serve_one(
    cfg: &ClusterConfig,
    me: ServerId,
    seeds: &[SeedEntry],
    on_listen: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    serve_one_opts(cfg, me, seeds, ServeOptions::default(), on_listen)
}

/// Options for a hosted server-node process ([`serve_one_opts`]).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Record a wall-clock span shard (phases stamped on this process's
    /// clock, spans created on first stamp) plus message edges, and ship
    /// both in the `StopResp` report for the coordinator to stitch into
    /// end-to-end spans.
    pub obs: bool,
    /// Wire-plane tuning, including `record_flush_spans`.
    pub net: PlaneConfig,
    /// Write this process's metric snapshot (`<path>.json` / `<path>.prom`)
    /// once at exit; `cx-obs top a.json b.json …` merges it with the
    /// coordinator's.
    pub metrics_out: Option<std::path::PathBuf>,
}

/// [`serve_one`] with explicit wire/observability options — the
/// `cx_net_server --config` body once the config asks for telemetry.
pub fn serve_one_opts(
    cfg: &ClusterConfig,
    me: ServerId,
    seeds: &[SeedEntry],
    opts: ServeOptions,
    on_listen: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    // One epoch for both the connection manager (probe timestamps, flush
    // spans) and the engine loop (phase stamps): every wall-clock stamp
    // this process emits is nanoseconds since this instant, so a single
    // probe-estimated offset corrects them all.
    let epoch = Instant::now();
    let book = Arc::new(AddrBook::new());
    let (conn, inbound) =
        ConnectionManager::start_with_epoch(NodeId::Server(me.0), book, opts.net.clone(), epoch)?;
    on_listen(conn.listen_addr());
    let conn = Arc::new(conn);
    let obs = if opts.obs {
        ObsSink::with_config(
            format!("{:?}", cfg.protocol).to_lowercase(),
            ObsConfig {
                shard_mode: true,
                ..ObsConfig::default()
            },
        )
    } else {
        ObsSink::Off
    };
    server_node_loop(
        cfg,
        me,
        seeds,
        Arc::clone(&conn),
        inbound,
        epoch,
        obs,
        opts.obs,
    );
    if let Some(out) = &opts.metrics_out {
        let reg = MetricRegistry::new();
        observe_wire_series(&reg, &conn.telemetry());
        LiveMetrics::write_files(&reg, out);
    }
    Ok(())
}

/// Fold one node's wire histograms into a registry's wire series.
fn observe_wire_series(reg: &MetricRegistry, t: &WireTelemetry) {
    reg.observe_hist(Series::WireQueueDepth, &t.queue_depth);
    reg.observe_hist(Series::WireFlushFrames, &t.flush_frames);
    reg.observe_hist(Series::WireFlushLatencyNs, &t.flush_latency_ns);
    reg.observe_hist(Series::WireCorkScopeNs, &t.cork_scope_ns);
    reg.observe_hist(Series::WireStallNs, &t.stall_ns);
}

// ---- server node ----

/// Everything a server node needs to put a payload on the wire, plus its
/// send-side message accounting (the DES counts sends the same way).
struct ServerNetCtx {
    conn: Arc<ConnectionManager>,
    epoch: Instant,
    me: ServerId,
    msg_counts: [u64; MsgKind::COUNT],
    server_msgs: u64,
    client_msgs: u64,
    /// The node's obs sink, for send-side lifecycle stamps (the wall-clock
    /// mirror of the DES's `obs_on_send`).
    obs: ObsSink,
    /// True when `obs` is a shard-mode sink private to this process: the
    /// `Stop` report then carries the span shard home to the coordinator.
    shard_obs: bool,
}

impl ServerNetCtx {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&mut self, to: Endpoint, payload: Payload) {
        if self.obs.enabled() {
            obs_on_send(&self.obs, Endpoint::Server(self.me), &payload, self.now());
        }
        self.msg_counts[payload.kind() as usize] += 1;
        match to {
            Endpoint::Server(_) => self.server_msgs += 1,
            Endpoint::Proc(_) => self.client_msgs += 1,
        }
        let frame = Frame::Msg {
            sent_ns: self.now().0,
            from: Endpoint::Server(self.me),
            to,
            payload,
        };
        let _ = self.conn.send(node_of(to), frame);
    }
}

/// Stamp lifecycle milestones from the send path: the payload kind names
/// the Cx phase the sender just entered. The wall-clock mirror of the
/// DES's `obs_on_send` — same phase mapping, `now` in nanoseconds since
/// the sender's epoch instead of virtual time. Stamping is
/// first-writer-wins, so retransmissions never move a milestone.
fn obs_on_send(obs: &ObsSink, from: Endpoint, payload: &Payload, now: SimTime) {
    let srv = match from {
        Endpoint::Server(s) => Some(s),
        Endpoint::Proc(_) => None,
    };
    match payload {
        // Client-visible path.
        Payload::SubOpReq { op_id, .. } | Payload::OpReq { op_id, .. } => {
            obs.op_phase(*op_id, Phase::Dispatched, now, None);
        }
        Payload::SubOpResp { op_id, .. } | Payload::OpResp { op_id, .. } => {
            obs.op_phase(*op_id, Phase::Executed, now, srv);
        }
        // Commitment path: batched Cx messages carry many ops; 2PC's
        // VoteExec and CE's migration round-trip are their (pre-reply)
        // analogues, so the same milestones work for every protocol.
        Payload::Vote { ops, .. } => {
            for &op in ops {
                obs.op_phase(op, Phase::VoteSent, now, srv);
            }
        }
        Payload::VoteExec { op_id, .. } | Payload::Migrate { op_id, .. } => {
            obs.op_phase(*op_id, Phase::VoteSent, now, srv);
        }
        Payload::CommitDecision { commits, aborts } => {
            for &op in commits.iter().chain(aborts) {
                obs.op_phase(op, Phase::DecisionSent, now, srv);
            }
        }
        Payload::MigrateBack { op_id, .. } => {
            obs.op_phase(*op_id, Phase::DecisionSent, now, srv);
        }
        Payload::Ack { ops } => {
            for &op in ops {
                obs.op_phase(op, Phase::Acked, now, srv);
            }
        }
        Payload::MigrateBackAck { op_id, .. } => {
            obs.op_phase(*op_id, Phase::Acked, now, srv);
        }
        _ => {}
    }
}

/// Interpret engine actions. Disk completions are immediate, as in the
/// threaded runtime (this runtime checks correctness under concurrency
/// and real sockets, not timing); timers go into the node's local queue.
fn process_server_actions(
    engine: &mut dyn ServerEngine,
    actions: Vec<Action>,
    ctx: &mut ServerNetCtx,
    timers: &mut TimerQueue<u64>,
) {
    let mut work: VecDeque<Action> = actions.into();
    while let Some(action) = work.pop_front() {
        match action {
            Action::Send { to, payload } => ctx.send(to, payload),
            Action::LogAppend { token, .. }
            | Action::DbSyncWrite { token, .. }
            | Action::DbWriteback { token, .. }
            | Action::LogRead { token, .. }
            | Action::DbRandomRead { token, .. } => {
                let mut out = Vec::new();
                engine.on_disk_done(ctx.now(), token, &mut out);
                work.extend(out);
            }
            Action::SetTimer { token, delay_ns } => {
                timers.push(SimTime(ctx.now().0 + delay_ns), token);
            }
        }
    }
}

/// Handle one inbound frame on a server node. Returns `true` when the
/// frame was the coordinator's `Stop` (the `StopResp` has been sent and
/// the engine loop must exit).
fn handle_server_frame(
    engine: &mut dyn ServerEngine,
    ctx: &mut ServerNetCtx,
    timers: &mut TimerQueue<u64>,
    obs: &ObsSink,
    me: ServerId,
    from_node: NodeId,
    frame: Frame,
) -> bool {
    match frame {
        Frame::Msg {
            sent_ns,
            from,
            to: _,
            payload,
        } => {
            let now = ctx.now();
            obs.msg_edge(
                crate::des::primary_op(&payload),
                payload.kind().into(),
                flow_of(from),
                FlowNode::Server(me.0),
                sent_ns,
                now.0,
            );
            let mut out = Vec::new();
            engine.on_msg(now, from, payload, &mut out);
            process_server_actions(engine, out, ctx, timers);
        }
        Frame::Quiesce => {
            let mut out = Vec::new();
            engine.quiesce(ctx.now(), &mut out);
            process_server_actions(engine, out, ctx, timers);
        }
        Frame::Probe { token, t0_ns } => {
            // Echo the prober's clock back and stamp ours: together with
            // the prober's receive time this is a full NTP-style exchange
            // ([`cx_net::ClockSync`]). Our stamp shares the epoch of every
            // span phase this process records, so the estimated offset
            // corrects them all.
            let _ = ctx.conn.send(
                from_node,
                Frame::ProbeResp {
                    token,
                    quiesced: engine.is_quiesced(),
                    echo_t0_ns: t0_ns,
                    remote_ns: ctx.now().0,
                },
            );
        }
        Frame::Stop => {
            let (spans, edges) = if ctx.shard_obs {
                obs.export_shard()
            } else {
                (Vec::new(), Vec::new())
            };
            let peers = ctx
                .conn
                .health_all()
                .into_iter()
                .map(|(node, h)| (format!("{node}"), h))
                .collect();
            let report = WireReport {
                stats: *engine.stats(),
                proto: engine.proto_metrics(),
                msgs: ctx.msg_counts.to_vec(),
                server_msgs: ctx.server_msgs,
                client_msgs: ctx.client_msgs,
                spans,
                edges,
                telem: ctx.conn.telemetry(),
                peers,
            };
            let stats_json = serde_json::to_string(&report)
                .expect("server report serializes")
                .into_bytes();
            let store = engine.store();
            let inodes = store
                .inodes()
                .map(|(ino, inode)| {
                    let kind = match inode.kind {
                        FileKind::Regular => 0u8,
                        FileKind::Directory => 1,
                    };
                    (ino.0, kind, inode.nlink)
                })
                .collect();
            let dentries = store
                .dentries()
                .map(|(&(parent, name), &child)| (parent.0, name.0, child.0))
                .collect();
            let _ = ctx.conn.send(
                from_node,
                Frame::StopResp {
                    stats_json,
                    inodes,
                    dentries,
                },
            );
            return true;
        }
        Frame::Peers { servers } => {
            for (s, addr) in servers {
                if NodeId::Server(s) != ctx.conn.me() {
                    if let Ok(a) = addr.parse() {
                        ctx.conn.book().set(NodeId::Server(s), a);
                    }
                }
            }
        }
        // Hello is consumed by the manager; other control frames
        // are coordinator-bound and never reach a server.
        _ => {}
    }
    false
}

/// Batches of inbound batches a server node processes per wakeup before it
/// re-checks its timer queue: enough to amortize the channel wakeup under
/// load, small enough to keep wall-clock timer latency bounded.
const SERVER_DRAIN_BATCHES: usize = 512;

/// One server node's engine loop: frame batches in, frames out, local
/// timers at wall-clock rate, until the coordinator's `Stop` (or the wire
/// plane disconnects). Shared verbatim between in-process threads and
/// external `cx_net_server` processes.
///
/// The inbound channel carries whole `Vec<Frame>` batches (one per reader
/// `read`), and each wakeup greedily drains up to [`SERVER_DRAIN_BATCHES`]
/// more with `try_recv`, so a busy server pays one channel wakeup and one
/// timer check per *batch of batches*, not per frame.
#[allow(clippy::too_many_arguments)]
fn server_node_loop(
    cfg: &ClusterConfig,
    me: ServerId,
    seeds: &[SeedEntry],
    conn: Arc<ConnectionManager>,
    inbound: Receiver<(NodeId, Vec<Frame>)>,
    epoch: Instant,
    obs: ObsSink,
    shard_obs: bool,
) {
    let placement = Placement::new(cfg.servers);
    let mut engine = cx_protocol::make_server(me, cfg);
    engine.install_obs(obs.clone());
    seed_engine(engine.as_mut(), &placement, seeds, me);

    let mut timers: TimerQueue<u64> = TimerQueue::new();
    let mut ctx = ServerNetCtx {
        conn,
        epoch,
        me,
        msg_counts: [0; MsgKind::COUNT],
        server_msgs: 0,
        client_msgs: 0,
        obs: obs.clone(),
        shard_obs,
    };

    let mut boot = Vec::new();
    engine.on_start(ctx.now(), &mut boot);
    process_server_actions(engine.as_mut(), boot, &mut ctx, &mut timers);

    let mut stop = false;
    while !stop {
        let timeout = timers
            .peek_deadline()
            .map(|d| {
                (ctx.epoch + Duration::from_nanos(d.0)).saturating_duration_since(Instant::now())
            })
            .unwrap_or(Duration::from_millis(20));
        let mut next = match inbound.recv_timeout(timeout) {
            Ok(batch) => Some(batch),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // One cork scope per wakeup: every frame this burst provokes
        // (replies, cross-server ops, ack fan-out) coalesces into one
        // write per peer when the guard drops below.
        let conn = Arc::clone(&ctx.conn);
        let cork = conn.cork_scope();
        let mut drained = 0;
        while let Some((from_node, mut frames)) = next.take() {
            for frame in frames.drain(..) {
                if handle_server_frame(
                    engine.as_mut(),
                    &mut ctx,
                    &mut timers,
                    &obs,
                    me,
                    from_node,
                    frame,
                ) {
                    stop = true;
                    break;
                }
            }
            ctx.conn.recycle_batch(frames);
            drained += 1;
            if stop || drained >= SERVER_DRAIN_BATCHES {
                break;
            }
            next = inbound.try_recv().ok();
        }
        let now = ctx.now();
        while timers.peek_deadline().is_some_and(|d| d <= now) {
            let (_, token) = timers.pop().expect("peeked");
            let mut out = Vec::new();
            engine.on_timer(ctx.now(), token, &mut out);
            process_server_actions(engine.as_mut(), out, &mut ctx, &mut timers);
        }
        drop(cork);
    }
    // Orderly shutdown flushes the outbound queues, so the StopResp (and
    // any trailing protocol messages) reach their peers.
    ctx.conn.shutdown();
}

// ---- client host (coordinator) ----

enum ProcMsg {
    Net {
        /// Logical client the frame addressed (`Endpoint::Proc`): the
        /// shepherd thread hosting several clients demuxes on it.
        client: u32,
        from: Endpoint,
        payload: Payload,
    },
}

/// The client host's sender: puts client payloads on the wire and keeps
/// the client-side share of the per-kind message accounting.
#[derive(Clone)]
struct ClientNet {
    conn: Arc<ConnectionManager>,
    epoch: Instant,
    counts: Arc<Mutex<[u64; MsgKind::COUNT]>>,
    client_msgs: Arc<AtomicU64>,
    obs: ObsSink,
}

impl ClientNet {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&self, from: Endpoint, to: Endpoint, payload: Payload) {
        if self.obs.enabled() {
            obs_on_send(&self.obs, from, &payload, self.now());
        }
        self.counts.lock()[payload.kind() as usize] += 1;
        self.client_msgs.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Msg {
            sent_ns: self.now().0,
            from,
            to,
            payload,
        };
        let _ = self.conn.send(node_of(to), frame);
    }
}

/// Mid-run connection-drop drill (see [`TcpOptions::drop_conns_after_ops`]).
struct DropDrill {
    after: u64,
    fired: AtomicBool,
    done_ops: AtomicU64,
    conn: Arc<ConnectionManager>,
    servers: u32,
}

impl DropDrill {
    fn tick(&self) {
        let n = self.done_ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.after && !self.fired.swap(true, Ordering::Relaxed) {
            for s in 0..self.servers {
                self.conn.drop_connection(NodeId::Server(s));
            }
        }
    }
}

/// One hosted logical client on a shepherd thread: its identity, its op
/// sequence counter, and its in-flight op (at most one — logical clients
/// stay strictly synchronous, exactly as when each had its own thread).
struct ClientSlot {
    me: u32,
    proc: ProcId,
    seq: u64,
    active: Option<InFlightOp>,
    feed_done: bool,
}

struct InFlightOp {
    op_id: OpId,
    class: cx_types::OpClass,
    cross: bool,
    issued_at: SimTime,
    client: ClientOp,
    timer: Option<(Instant, u64)>,
}

/// Environment shared by every slot a shepherd hosts.
struct ShepherdCtx<'a> {
    net: &'a ClientNet,
    cfg: &'a ClusterConfig,
    placement: Placement,
    outcomes: &'a Mutex<Vec<(OpId, OpOutcome, bool)>>,
    obs: &'a ObsSink,
    registry: Option<&'a MetricRegistry>,
    drill: Option<&'a Arc<DropDrill>>,
}

/// Where a shepherd's replies come from.
enum ShepherdRx {
    /// A per-shepherd channel fed by the demux pump (several shepherds).
    Demuxed(Receiver<ProcMsg>),
    /// The connection manager's raw inbound, consumed directly (single
    /// shepherd): the pump hop — one futex wake plus one channel transfer
    /// per reply batch — disappears; the shepherd demuxes inline and
    /// forwards control frames itself. The receiver is handed back on
    /// exit so the coordinator can run the drain/stop protocol over it.
    Direct {
        inbound: Receiver<(NodeId, Vec<Frame>)>,
        ctrl_tx: Sender<(NodeId, Frame)>,
        pool: Arc<Mutex<VecPool<Frame>>>,
        epoch: Instant,
    },
}

enum ShepherdWake {
    Replies,
    Timeout,
    Disconnected,
}

/// Drive a set of logical clients off one OS thread. Each wakeup drains
/// every queued reply (one `recv` then greedy `try_recv`), then refills
/// every idle slot with its next op — so request frames from several
/// clients enter the wire queue back-to-back and coalesce into shared
/// flushes, and a batch of replies costs one futex wake instead of one
/// per client. Per-client semantics are identical to the one-thread-per-
/// client shape: a slot never has more than one op in flight, and its op
/// order is its feed order.
///
/// Returns the raw inbound receiver when running in [`ShepherdRx::Direct`]
/// mode, so the caller can keep consuming control frames afterwards.
#[allow(clippy::too_many_arguments)]
fn shepherd_loop(
    clients: Vec<u32>,
    feed: Arc<Mutex<OpFeed>>,
    rx: ShepherdRx,
    shepherds: usize,
    net: ClientNet,
    cfg: &ClusterConfig,
    placement: Placement,
    outcomes: Arc<Mutex<Vec<(OpId, OpOutcome, bool)>>>,
    obs: ObsSink,
    registry: Option<MetricRegistry>,
    drill: Option<Arc<DropDrill>>,
) -> Option<Receiver<(NodeId, Vec<Frame>)>> {
    let ctx = ShepherdCtx {
        net: &net,
        cfg,
        placement,
        outcomes: &outcomes,
        obs: &obs,
        registry: registry.as_ref(),
        drill: drill.as_ref(),
    };
    let mut slots: Vec<ClientSlot> = clients
        .iter()
        .map(|&me| ClientSlot {
            me,
            proc: ProcId::new(me, 0),
            seq: 0,
            active: None,
            feed_done: false,
        })
        .collect();
    loop {
        // Refill every idle slot: one feed lock for the whole sweep, then
        // issue outside it (sends can block on wire-queue backpressure),
        // so the requests land back-to-back in the wire queue.
        let mut refill: Vec<(usize, cx_types::FsOp)> = Vec::new();
        {
            let mut f = feed.lock();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.active.is_none() && !slot.feed_done {
                    match f.next_for(slot.me) {
                        Some(op) => refill.push((i, op)),
                        None => slot.feed_done = true,
                    }
                }
            }
        }
        if !refill.is_empty() {
            // The whole refill sweep is one cork scope: requests from
            // every hosted client aimed at the same server share a flush.
            let _cork = net.conn.cork_scope();
            for (i, op) in refill {
                slot_issue(&ctx, &mut slots[i], op);
            }
        }
        if slots.iter().all(|s| s.active.is_none() && s.feed_done) {
            break;
        }

        // Sleep until the earliest pending client timer (or a liveness
        // backstop), then drain every reply that has queued up.
        let wait = slots
            .iter()
            .filter_map(|s| s.active.as_ref()?.timer.map(|(at, _)| at))
            .min()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(30));
        let wake = match &rx {
            ShepherdRx::Demuxed(ch) => match ch.recv_timeout(wait) {
                Ok(msg) => {
                    // Cork the reply burst too: protocol follow-ups (e.g.
                    // Cx cross-server second phases) issued while draining
                    // share flushes the same way the refill sweep does.
                    let _cork = net.conn.cork_scope();
                    shepherd_deliver(&ctx, &mut slots, shepherds, msg);
                    while let Ok(msg) = ch.try_recv() {
                        shepherd_deliver(&ctx, &mut slots, shepherds, msg);
                    }
                    ShepherdWake::Replies
                }
                Err(RecvTimeoutError::Timeout) => ShepherdWake::Timeout,
                Err(RecvTimeoutError::Disconnected) => ShepherdWake::Disconnected,
            },
            ShepherdRx::Direct {
                inbound,
                ctrl_tx,
                pool,
                epoch,
            } => match inbound.recv_timeout(wait) {
                Ok((node, frames)) => {
                    let _cork = net.conn.cork_scope();
                    shepherd_deliver_raw(&ctx, &mut slots, node, frames, ctrl_tx, pool, *epoch);
                    while let Ok((node, frames)) = inbound.try_recv() {
                        shepherd_deliver_raw(&ctx, &mut slots, node, frames, ctrl_tx, pool, *epoch);
                    }
                    ShepherdWake::Replies
                }
                Err(RecvTimeoutError::Timeout) => ShepherdWake::Timeout,
                Err(RecvTimeoutError::Disconnected) => ShepherdWake::Disconnected,
            },
        };
        match wake {
            ShepherdWake::Replies => {}
            ShepherdWake::Timeout => {
                let now = Instant::now();
                let mut fired = false;
                for slot in &mut slots {
                    let Some(active) = &mut slot.active else {
                        continue;
                    };
                    let Some((at, token)) = active.timer else {
                        continue;
                    };
                    if at > now {
                        continue;
                    }
                    fired = true;
                    active.timer = None;
                    let mut out = Vec::new();
                    let d = active.client.on_timer(net.now(), token, &mut out);
                    let from_me = Endpoint::Proc(slot.proc);
                    send_client_actions(&net, from_me, out, &mut active.timer);
                    if let ClientDecision::Done(outcome) = d {
                        slot_finish(&ctx, slot, outcome);
                    }
                }
                if !fired && wait >= Duration::from_secs(30) {
                    let stuck: Vec<OpId> = slots
                        .iter()
                        .filter_map(|s| Some(s.active.as_ref()?.op_id))
                        .collect();
                    panic!("clients timed out waiting for ops {stuck:?} over TCP");
                }
            }
            ShepherdWake::Disconnected => break,
        }
    }
    match rx {
        ShepherdRx::Demuxed(_) => None,
        ShepherdRx::Direct { inbound, .. } => Some(inbound),
    }
}

/// Direct-mode demux: what the pump does per batch, done inline on the
/// shepherd thread. Protocol messages step their client's machine; control
/// responses are forwarded to the coordinator's control channel; the spent
/// batch vec goes back to the reader pool.
fn shepherd_deliver_raw(
    ctx: &ShepherdCtx<'_>,
    slots: &mut [ClientSlot],
    node: NodeId,
    mut frames: Vec<Frame>,
    ctrl_tx: &Sender<(NodeId, Frame)>,
    pool: &Arc<Mutex<VecPool<Frame>>>,
    epoch: Instant,
) {
    for frame in frames.drain(..) {
        match frame {
            Frame::Msg {
                sent_ns,
                from,
                to: Endpoint::Proc(p),
                payload,
            } => {
                ctx.obs.msg_edge(
                    crate::des::primary_op(&payload),
                    payload.kind().into(),
                    flow_of(from),
                    FlowNode::Client(p.client.0),
                    sent_ns,
                    epoch.elapsed().as_nanos() as u64,
                );
                shepherd_deliver(
                    ctx,
                    slots,
                    1,
                    ProcMsg::Net {
                        client: p.client.0,
                        from,
                        payload,
                    },
                );
            }
            Frame::ProbeResp { .. } | Frame::StopResp { .. } => {
                let _ = ctrl_tx.send((node, frame));
            }
            _ => {}
        }
    }
    pool.lock().put(frames);
}

/// Start `op` on an idle slot: plan it, record issue-side observability,
/// and put the opening request(s) on the wire.
fn slot_issue(ctx: &ShepherdCtx<'_>, slot: &mut ClientSlot, op: cx_types::FsOp) {
    let op_id = OpId::new(slot.proc, slot.seq);
    slot.seq += 1;
    let plan = ctx.placement.plan(op);
    let cross = plan.is_cross_server();
    let issued_at = ctx.net.now();
    ctx.obs.op_issued(op_id, op.class(), cross, issued_at);
    let mut out = Vec::new();
    let client = ClientOp::start(ctx.cfg.protocol, op_id, plan, &ctx.cfg.cx, &mut out);
    let mut timer = None;
    send_client_actions(ctx.net, Endpoint::Proc(slot.proc), out, &mut timer);
    slot.active = Some(InFlightOp {
        op_id,
        class: op.class(),
        cross,
        issued_at,
        client,
        timer,
    });
}

/// Route one inbound payload to the slot hosting its client and step that
/// client's protocol machine.
fn shepherd_deliver(
    ctx: &ShepherdCtx<'_>,
    slots: &mut [ClientSlot],
    shepherds: usize,
    msg: ProcMsg,
) {
    let ProcMsg::Net {
        client,
        from,
        payload,
    } = msg;
    // Round-robin placement: client `c` lives on shepherd `c % shepherds`
    // at local slot `c / shepherds`.
    let Some(slot) = slots.get_mut(client as usize / shepherds) else {
        return;
    };
    debug_assert_eq!(slot.me, client);
    let Some(active) = &mut slot.active else {
        return; // late duplicate from an op that already completed
    };
    let mut out = Vec::new();
    let d = active.client.on_msg(ctx.net.now(), from, payload, &mut out);
    let from_me = Endpoint::Proc(slot.proc);
    send_client_actions(ctx.net, from_me, out, &mut active.timer);
    if let ClientDecision::Done(outcome) = d {
        slot_finish(ctx, slot, outcome);
    }
}

/// Completion-side accounting for a finished op, identical to the former
/// per-thread client loop; the slot goes idle and is refilled on the next
/// shepherd sweep.
fn slot_finish(ctx: &ShepherdCtx<'_>, slot: &mut ClientSlot, outcome: OpOutcome) {
    let active = slot.active.take().expect("finishing an in-flight op");
    let done = ctx.net.now();
    let awaits = active.cross && ctx.cfg.protocol == Protocol::Cx;
    ctx.obs.op_replied(active.op_id, done, outcome, awaits);
    let latency = done.0.saturating_sub(active.issued_at.0);
    ctx.obs.client_latency(active.class, active.cross, latency);
    if let Some(reg) = ctx.registry {
        reg.inc(Counter::OpsIssued);
        reg.inc(match outcome {
            OpOutcome::Applied => Counter::OpsApplied,
            OpOutcome::Failed => Counter::OpsFailed,
        });
        if active.cross {
            reg.inc(Counter::CrossOps);
        }
        reg.observe(Series::ClientLatencyNs, latency);
    }
    ctx.outcomes
        .lock()
        .push((active.op_id, outcome, active.cross));
    if let Some(d) = ctx.drill {
        d.tick();
    }
}

fn send_client_actions(
    net: &ClientNet,
    from: Endpoint,
    actions: Vec<Action>,
    timer: &mut Option<(Instant, u64)>,
) {
    for action in actions {
        match action {
            Action::Send { to, payload } => net.send(from, to, payload),
            Action::SetTimer { token, delay_ns } => {
                *timer = Some((Instant::now() + Duration::from_nanos(delay_ns), token));
            }
            other => unreachable!("clients have no disks: {other:?}"),
        }
    }
}

/// Spawn the inbound demux pump: protocol messages to their client's
/// shepherd channel, control replies (probe/stop) to the coordinator's
/// control channel. The pump takes drained batch vectors back through the
/// pool handle rather than an `Arc<ConnectionManager>`: holding the
/// manager here would keep its inbound sender alive and the pump would
/// never see the channel disconnect.
fn spawn_pump(
    inbound: Receiver<(NodeId, Vec<Frame>)>,
    obs: ObsSink,
    proc_tx: Vec<Sender<ProcMsg>>,
    ctrl_tx: Sender<(NodeId, Frame)>,
    pool: Arc<Mutex<VecPool<Frame>>>,
    epoch: Instant,
    shepherds: usize,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("cx-pump".into())
        .spawn(move || {
            while let Ok((node, mut frames)) = inbound.recv() {
                for frame in frames.drain(..) {
                    match frame {
                        Frame::Msg {
                            sent_ns,
                            from,
                            to: Endpoint::Proc(p),
                            payload,
                        } => {
                            obs.msg_edge(
                                crate::des::primary_op(&payload),
                                payload.kind().into(),
                                flow_of(from),
                                FlowNode::Client(p.client.0),
                                sent_ns,
                                epoch.elapsed().as_nanos() as u64,
                            );
                            if let Some(tx) = proc_tx.get(p.client.0 as usize % shepherds) {
                                let _ = tx.send(ProcMsg::Net {
                                    client: p.client.0,
                                    from,
                                    payload,
                                });
                            }
                        }
                        Frame::ProbeResp { .. } | Frame::StopResp { .. } => {
                            let _ = ctrl_tx.send((node, frame));
                        }
                        _ => {}
                    }
                }
                pool.lock().put(frames);
            }
        })
        .expect("spawn inbound pump")
}

// ---- the run ----

fn run_inner(
    cfg: ClusterConfig,
    st: StreamTrace,
    opts: TcpOptions,
    external: Option<Vec<SocketAddr>>,
) -> TcpRunResult {
    let StreamTrace {
        name: _,
        processes,
        seeds,
        roots,
        total_ops_hint,
        ops,
    } = st;
    let start = Instant::now();
    let epoch = start;
    let placement = Placement::new(cfg.servers);

    let book = Arc::new(AddrBook::new());
    // Every in-process manager shares the run's epoch, so loopback stamps
    // (frame sent_ns, flush spans, probe timestamps) live on one clock and
    // need no offset correction; external processes have their own epochs
    // and get probe-estimated offsets instead.
    let (conn, inbound) = ConnectionManager::start_with_epoch(
        NodeId::ClientHost(0),
        Arc::clone(&book),
        opts.net.clone(),
        epoch,
    )
    .expect("bind coordinator listener");
    let conn = Arc::new(conn);

    // Server nodes: in-process threads sharing the address book, or
    // external processes reached through the gossiped peer map. Every
    // in-process manager is also tracked for cluster-wide wire-throughput
    // aggregation (external processes keep their counters to themselves).
    let mut server_threads = Vec::new();
    let mut wire_conns: Vec<Arc<ConnectionManager>> = vec![Arc::clone(&conn)];
    match &external {
        None => {
            // Bind every manager before spawning any engine thread, so
            // the boot-time `prime` sweep each server runs finds every
            // peer's address already in the shared book.
            let mut bound = Vec::new();
            for i in 0..cfg.servers {
                let (sconn, sin) = ConnectionManager::start_with_epoch(
                    NodeId::Server(i),
                    Arc::clone(&book),
                    opts.net.clone(),
                    epoch,
                )
                .expect("bind server listener");
                book.set(NodeId::Server(i), sconn.listen_addr());
                let sconn = Arc::new(sconn);
                wire_conns.push(Arc::clone(&sconn));
                bound.push((i, sconn, sin));
            }
            for (i, sconn, sin) in bound {
                let cfg = cfg.clone();
                let seeds = seeds.clone();
                let obs = opts.obs.clone();
                server_threads.push(
                    thread::Builder::new()
                        .name(format!("cx-srv{i}"))
                        .spawn(move || {
                            server_node_loop(
                                &cfg,
                                ServerId(i),
                                &seeds,
                                sconn,
                                sin,
                                epoch,
                                obs,
                                false,
                            )
                        })
                        .expect("spawn server loop"),
                );
            }
        }
        Some(addrs) => {
            assert_eq!(
                addrs.len(),
                cfg.servers as usize,
                "one external server address per configured server"
            );
            for (i, a) in addrs.iter().enumerate() {
                book.set(NodeId::Server(i as u32), *a);
            }
            let peers: Vec<(u32, String)> = addrs
                .iter()
                .enumerate()
                .map(|(i, a)| (i as u32, a.to_string()))
                .collect();
            for i in 0..cfg.servers {
                let _ = conn.send(
                    NodeId::Server(i),
                    Frame::Peers {
                        servers: peers.clone(),
                    },
                );
            }
        }
    }

    // Client shepherds: `client_threads` OS threads host the `processes`
    // logical clients round-robin (client `c` on shepherd `c % shepherds`).
    // Auto (0) picks enough shepherds for reply-batching to pay without
    // starving wide multi-core boxes of client-side parallelism.
    let shepherds = match opts.client_threads {
        0 => {
            let cores = thread::available_parallelism().map_or(1, |n| n.get());
            cores.clamp(1, processes.max(1) as usize)
        }
        n => n.clamp(1, processes.max(1) as usize),
    };

    // Demux pump: protocol messages to their client's shepherd channel,
    // control replies (probe/stop) to the coordinator's control channel.
    // With a single shepherd the pump hop is skipped during the ops phase
    // entirely: the shepherd consumes the manager's raw inbound directly
    // (one futex wake fewer per reply batch) and hands the receiver back
    // when its clients finish, at which point the pump spawns to carry
    // the drain/stop control traffic to `ctrl_rx`.
    let (ctrl_tx, ctrl_rx) = unbounded::<(NodeId, Frame)>();
    let (pump, feeds): (Option<thread::JoinHandle<()>>, Vec<ShepherdRx>) = if shepherds == 1 {
        (
            None,
            vec![ShepherdRx::Direct {
                inbound,
                ctrl_tx: ctrl_tx.clone(),
                pool: conn.batch_pool_handle(),
                epoch,
            }],
        )
    } else {
        let mut proc_tx = Vec::new();
        let mut feeds = Vec::new();
        for _ in 0..shepherds {
            let (tx, rx) = unbounded::<ProcMsg>();
            proc_tx.push(tx);
            feeds.push(ShepherdRx::Demuxed(rx));
        }
        let pump = spawn_pump(
            inbound,
            opts.obs.clone(),
            proc_tx,
            ctrl_tx.clone(),
            conn.batch_pool_handle(),
            epoch,
            shepherds,
        );
        (Some(pump), feeds)
    };

    // Live-exposition monitor: the threaded runtime's periodic snapshot
    // writer, plus the wire-throughput gauges — per-period deltas of the
    // aggregated frame/byte/flush totals across every in-process manager.
    let live_reg = opts.live.as_ref().map(|l| l.registry.clone());
    let monitor_stop = Arc::new(AtomicBool::new(false));
    let sum_wire = |conns: &[Arc<ConnectionManager>]| {
        let mut tot = WireTotals::default();
        for c in conns {
            tot.add(c.wire_totals());
        }
        tot
    };
    let monitor_thread = opts.live.as_ref().and_then(|l| {
        let out = l.out.clone()?;
        let reg = l.registry.clone();
        let period = l.period;
        let stop = Arc::clone(&monitor_stop);
        let wire = wire_conns.clone();
        let obs = opts.obs.clone();
        let wall_epoch = epoch;
        Some(
            thread::Builder::new()
                .name("cx-mon".into())
                .spawn(move || {
                    /// An op still shy of `Replied` after this much wall
                    /// time earns a watchdog line.
                    const STUCK_WARN_NS: u64 = 5_000_000_000;
                    /// …and one escalation if it is *still* stuck here
                    /// (the shepherds' own panic backstop fires at 30 s).
                    const STUCK_ESCALATE_NS: u64 = 30_000_000_000;
                    let mut prev = WireTotals::default();
                    let mut last = Instant::now();
                    // Warning stage per op: 1 after the first line, 2
                    // after the escalation — never re-warn per poll tick.
                    let mut warned: HashMap<OpId, u8> = HashMap::new();
                    while !stop.load(Ordering::Relaxed) {
                        let mut tot = WireTotals::default();
                        for c in &wire {
                            tot.add(c.wire_totals());
                        }
                        let now = Instant::now();
                        let dt = now.duration_since(last).as_secs_f64();
                        if dt > 0.0 {
                            let rate =
                                |cur: u64, old: u64| ((cur - old) as f64 / dt).round() as u64;
                            reg.set_gauge(Gauge::WireFramesPerSec, rate(tot.frames, prev.frames));
                            reg.set_gauge(Gauge::WireBytesPerSec, rate(tot.bytes, prev.bytes));
                            reg.set_gauge(
                                Gauge::WireFlushesPerSec,
                                rate(tot.flushes, prev.flushes),
                            );
                        }
                        prev = tot;
                        last = now;
                        // Wall-clock stuck-op watchdog: the obs live map
                        // names every op still in flight and the phase it
                        // stalled in; long-stalled ops get one line each,
                        // with wall seconds since their last milestone.
                        if obs.enabled() {
                            let stuck = obs.stuck_report();
                            reg.set_gauge(Gauge::OpsInFlight, stuck.len() as u64);
                            let now_ns = wall_epoch.elapsed().as_nanos() as u64;
                            // Ops that finally replied leave the stage map
                            // so a long run's watchdog state stays bounded.
                            warned.retain(|op, _| stuck.iter().any(|s| s.op == *op));
                            for s in &stuck {
                                let age = now_ns.saturating_sub(s.since.0);
                                let stage = warned.entry(s.op).or_insert(0);
                                if *stage == 0 && age > STUCK_WARN_NS {
                                    *stage = 1;
                                    eprintln!("[cx-mon] {s} ({:.1}s wall)", age as f64 / 1e9);
                                } else if *stage == 1 && age > STUCK_ESCALATE_NS {
                                    *stage = 2;
                                    eprintln!(
                                        "[cx-mon] STILL STUCK: {s} ({:.1}s wall; \
                                         shepherd backstop imminent)",
                                        age as f64 / 1e9
                                    );
                                }
                            }
                        }
                        LiveMetrics::write_files(&reg, &out);
                        thread::sleep(period);
                    }
                })
                .expect("spawn live monitor"),
        )
    });

    let client_counts = Arc::new(Mutex::new([0u64; MsgKind::COUNT]));
    let client_msgs = Arc::new(AtomicU64::new(0));
    let net = ClientNet {
        conn: Arc::clone(&conn),
        epoch,
        counts: Arc::clone(&client_counts),
        client_msgs: Arc::clone(&client_msgs),
        obs: opts.obs.clone(),
    };
    let drill = opts.drop_conns_after_ops.map(|after| {
        Arc::new(DropDrill {
            after,
            fired: AtomicBool::new(false),
            done_ops: AtomicU64::new(0),
            conn: Arc::clone(&conn),
            servers: cfg.servers,
        })
    });

    // Shepherd threads, sharing one locked feed over the stream.
    let outcomes = Arc::new(Mutex::new(Vec::<(OpId, OpOutcome, bool)>::new()));
    let feed = Arc::new(Mutex::new(OpFeed::new(ops, processes, total_ops_hint)));
    let mut client_threads = Vec::new();
    for (i, rx) in feeds.into_iter().enumerate() {
        let clients: Vec<u32> = (i as u32..processes).step_by(shepherds).collect();
        let net = net.clone();
        let cfg = cfg.clone();
        let outcomes = Arc::clone(&outcomes);
        let feed = Arc::clone(&feed);
        let obs = opts.obs.clone();
        let reg = live_reg.clone();
        let drill = drill.clone();
        client_threads.push(
            thread::Builder::new()
                .name(format!("cx-cli{i}"))
                .spawn(move || {
                    shepherd_loop(
                        clients, feed, rx, shepherds, net, &cfg, placement, outcomes, obs, reg,
                        drill,
                    )
                })
                .expect("spawn client shepherd"),
        );
    }
    let mut leftover_inbound = None;
    for t in client_threads {
        if let Some(rx) = t.join().expect("client thread panicked") {
            leftover_inbound = Some(rx);
        }
    }

    // Direct mode hands the inbound back once the last op completes; the
    // pump starts now so the drain/stop exchanges below still reach
    // `ctrl_rx` (no protocol traffic remains — an empty shepherd-channel
    // list is fine).
    let pump = match pump {
        Some(h) => h,
        None => spawn_pump(
            leftover_inbound.expect("single shepherd hands back the inbound receiver"),
            opts.obs.clone(),
            Vec::new(),
            ctrl_tx,
            conn.batch_pool_handle(),
            epoch,
            1,
        ),
    };
    // Drain: quiesce rounds over the wire until every server reports
    // quiesced (tokens tie probe replies to their round, so a straggling
    // reply from a timed-out round cannot satisfy a later one).
    let server_nodes: Vec<NodeId> = (0..cfg.servers).map(NodeId::Server).collect();
    // Every probe round trip doubles as an NTP-style clock-offset sample
    // (`t0` at send, the server's echoed stamp, `t3` at receipt): the
    // min-RTT estimate per server later pulls that process's span shard
    // and flush-span stamps onto the coordinator's clock. Loopback servers
    // share our epoch, so their measured offsets are ~0 — harmless.
    let mut clock_sync: HashMap<NodeId, ClockSync> = HashMap::new();
    for round in 0..200u64 {
        for &s in &server_nodes {
            let _ = conn.send(s, Frame::Quiesce);
        }
        thread::sleep(Duration::from_micros(200));
        let mut pending: HashMap<NodeId, u64> = server_nodes
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, round * 4096 + i as u64))
            .collect();
        for (&s, &token) in &pending {
            let _ = conn.send(
                s,
                Frame::Probe {
                    token,
                    t0_ns: conn.now_ns(),
                },
            );
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut all = true;
        while !pending.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                all = false;
                break;
            }
            match ctrl_rx.recv_timeout(left) {
                Ok((
                    node,
                    Frame::ProbeResp {
                        token,
                        quiesced,
                        echo_t0_ns,
                        remote_ns,
                    },
                )) => {
                    let t3 = conn.now_ns();
                    let (rtt, offset) = clock_sync
                        .entry(node)
                        .or_default()
                        .sample(echo_t0_ns, remote_ns, t3);
                    conn.note_rtt(node, rtt, offset);
                    if pending.get(&node) == Some(&token) {
                        pending.remove(&node);
                        if !quiesced {
                            all = false;
                        }
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    all = false;
                    break;
                }
            }
        }
        if all && pending.is_empty() {
            break;
        }
    }

    // Collect final state: Stop each server; its StopResp carries stats,
    // the store snapshot for the global atomicity check, and the node's
    // wall-clock telemetry (span shard, wire histograms, per-peer rows).
    let mut stats = RunStats::new(cfg.protocol, cfg.servers, processes);
    let mut flat = [0u64; MsgKind::COUNT];
    let mut stores = Vec::new();
    let mut telem = conn.telemetry();
    let mut net_rows: Vec<NetPeerRow> = Vec::new();
    for &s in &server_nodes {
        let _ = conn.send(s, Frame::Stop);
    }
    let mut awaiting: HashSet<NodeId> = server_nodes.iter().copied().collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while !awaiting.is_empty() {
        let left = deadline.saturating_duration_since(Instant::now());
        let (node, frame) = ctrl_rx
            .recv_timeout(left)
            .expect("server final state over TCP");
        if let Frame::StopResp {
            stats_json,
            inodes,
            dentries,
        } = frame
        {
            if !awaiting.remove(&node) {
                continue;
            }
            let text = String::from_utf8(stats_json).expect("stats json is utf-8");
            let report: WireReport = serde_json::from_str(&text).expect("stats json parses");
            stats.server_stats.merge(&report.stats);
            stats.proto.merge(&report.proto);
            for (slot, n) in flat.iter_mut().zip(report.msgs.iter()) {
                *slot += n;
            }
            stats.server_msgs += report.server_msgs;
            stats.client_msgs += report.client_msgs;
            // Stitch the node's wall-clock telemetry onto our timeline:
            // the quiesce probes' min-RTT estimate says how far its clock
            // (= process epoch) sits from ours.
            let offset = clock_sync
                .get(&node)
                .and_then(|s| s.estimate())
                .map_or(0, |e| e.offset_ns);
            if !report.spans.is_empty() || !report.edges.is_empty() {
                opts.obs.absorb_shard(&report.spans, &report.edges, offset);
            }
            telem.merge(&report.telem, offset);
            let on = format!("{node}");
            for (peer, h) in &report.peers {
                net_rows.push(peer_row(&on, peer, h));
            }
            // Rebuild the server's namespace rows (attribute versions are
            // not part of the snapshot; the atomicity check only reads
            // kind/nlink and the entry table).
            let mut store = MetaStore::new();
            for (ino, kind, nlink) in inodes {
                let kind = if kind == 1 {
                    FileKind::Directory
                } else {
                    FileKind::Regular
                };
                store.seed_inode(InodeNo(ino), kind, nlink);
            }
            for (parent, name, child) in dentries {
                store.seed_dentry(InodeNo(parent), Name(name), InodeNo(child));
            }
            stores.push(store);
        }
    }

    for (slot, n) in flat.iter_mut().zip(client_counts.lock().iter()) {
        *slot += n;
    }
    stats.client_msgs += client_msgs.load(Ordering::Relaxed);
    for (kind, &n) in MsgKind::ALL.iter().zip(&flat) {
        if n > 0 {
            stats.msgs.insert(*kind, n);
        }
    }
    for (_, outcome, cross) in outcomes.lock().iter() {
        stats.record_outcome(*outcome);
        stats.ops_total += 1;
        if *cross {
            stats.cross_ops += 1;
        }
    }
    // Refresh the hang diagnostics now the run is over: anything still shy
    // of `Replied` here is genuinely stuck (the watchdog's mid-run
    // snapshots were transient and are overwritten by this read).
    stats.stuck_ops = opts.obs.stuck_report();
    stats.ops_stuck = stats.ops_stuck.max(stats.stuck_ops.len() as u64);
    // Blame attribution runs after the shard absorb above, so the table
    // covers the stitched, offset-corrected span plane.
    stats.blame = opts.obs.blame_table();
    if let Some(l) = &opts.live {
        stats.proto.publish(&l.registry);
        // The merged wire histograms land once, at the end: the series
        // carry per-flush samples from every node, which no periodic
        // monitor delta could reconstruct.
        observe_wire_series(&l.registry, &telem);
        monitor_stop.store(true, Ordering::Relaxed);
        if let Some(t) = monitor_thread {
            let _ = t.join();
        }
        // Final exposition carries whole-run average wire rates (the
        // per-period gauge from the monitor would be a stale last sample).
        let wall = start.elapsed().as_secs_f64();
        if wall > 0.0 {
            let tot = sum_wire(&wire_conns);
            let avg = |n: u64| (n as f64 / wall).round() as u64;
            l.registry
                .set_gauge(Gauge::WireFramesPerSec, avg(tot.frames));
            l.registry.set_gauge(Gauge::WireBytesPerSec, avg(tot.bytes));
            l.registry
                .set_gauge(Gauge::WireFlushesPerSec, avg(tot.flushes));
        }
        if let Some(out) = &l.out {
            LiveMetrics::write_files(&l.registry, out);
        }
    }

    let violations = GlobalView::merge(stores.iter()).check(&roots);
    let reconnects = conn.reconnects_total();
    let health = conn.health_all();
    let wire = sum_wire(&wire_conns);
    let on = format!("{}", conn.me());
    for (peer, h) in &health {
        net_rows.push(peer_row(&on, &format!("{peer}"), h));
    }

    conn.shutdown();
    drop(net);
    drop(drill);
    // Every manager handle must go before the pump can observe the
    // inbound channel disconnect.
    drop(wire_conns);
    drop(conn);
    let _ = pump.join();
    for t in server_threads {
        let _ = t.join();
    }

    TcpRunResult {
        stats,
        violations,
        wall: start.elapsed(),
        reconnects,
        health,
        wire,
        telem,
        net: NetTable { rows: net_rows },
    }
}

/// Flatten one observer→peer [`HealthSnapshot`] into its net-table row.
fn peer_row(on: &str, peer: &str, h: &HealthSnapshot) -> NetPeerRow {
    NetPeerRow {
        on: on.into(),
        peer: peer.into(),
        frames: h.sends,
        bytes: h.bytes,
        flushes: h.flushes,
        send_failures: h.failures,
        reconnects: h.reconnects,
        ewma_flush_ns: h.ewma_ns,
        score: h.score,
        rtt_p50_ns: h.rtt_p50_ns,
        rtt_p99_ns: h.rtt_p99_ns,
        rtt_min_ns: h.rtt_min_ns,
        rtt_samples: h.rtt_samples,
        clock_offset_ns: h.clock_offset_ns,
        queue_peak: h.queue_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::BatchTrigger;
    use cx_workloads::{TraceBuilder, TraceProfile};

    fn fast_cfg(servers: u32, protocol: Protocol) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(servers, protocol);
        // wall-clock triggers must be short in tests
        cfg.cx.trigger = BatchTrigger::Timeout {
            period_ns: 5_000_000, // 5 ms
        };
        cfg.cx.hint_mismatch_timeout_ns = 20_000_000;
        cfg
    }

    #[test]
    fn tcp_loopback_trace_replay_is_consistent() {
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.001)
            .build();
        let res = TcpCluster::run(fast_cfg(4, Protocol::Cx), &trace);
        assert_eq!(res.violations, vec![]);
        assert_eq!(res.stats.ops_total, trace.ops.len() as u64);
        assert!(res.stats.server_stats.ops_committed > 0);
        assert!(res.stats.total_msgs() > 0, "messages crossed real sockets");
    }

    #[test]
    fn tcp_reconnect_drill_completes_losslessly() {
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.001)
            .build();
        let opts = TcpOptions {
            drop_conns_after_ops: Some(20),
            ..TcpOptions::default()
        };
        let res = TcpCluster::run_stream_opts(fast_cfg(4, Protocol::Cx), trace.to_stream(), opts);
        assert_eq!(res.violations, vec![]);
        assert_eq!(res.stats.ops_total, trace.ops.len() as u64);
        assert!(
            res.reconnects >= 1,
            "the drill must force at least one re-dial"
        );
    }

    #[test]
    fn tcp_loopback_spans_are_complete_and_monotone() {
        // Wall-clock span coverage on the loopback plane: every op the
        // trace issued must come back with a merged span whose stamps are
        // monotone along the phase order and which reached `Completed`
        // (the protocol ack). The flush telemetry and the net table ride
        // on the same run.
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.001)
            .build();
        let sink = ObsSink::recording("cx");
        let opts = TcpOptions {
            obs: sink.clone(),
            net: PlaneConfig {
                record_flush_spans: true,
                ..PlaneConfig::default()
            },
            ..TcpOptions::default()
        };
        let res = TcpCluster::run_stream_opts(fast_cfg(3, Protocol::Cx), trace.to_stream(), opts);
        assert_eq!(res.violations, vec![]);
        let rep = sink.report().expect("recording sink yields a report");
        assert_eq!(rep.spans.len(), trace.ops.len());
        // Local ops finish at `Replied`; only cross ops go through the
        // decoupled commitment and earn a `Completed` stamp.
        let replied = rep
            .spans
            .iter()
            .filter(|s| s.at(Phase::Replied).is_some())
            .count();
        assert!(
            replied * 100 >= rep.spans.len() * 99,
            "{replied}/{} spans reached Replied",
            rep.spans.len()
        );
        let cross = rep.spans.iter().filter(|s| s.cross).count();
        let committed = rep
            .spans
            .iter()
            .filter(|s| s.cross && s.at(Phase::Completed).is_some())
            .count();
        assert!(
            cross > 0 && committed * 100 >= cross * 99,
            "{committed}/{cross} cross spans reached Completed"
        );
        // `check_accounting` enforces the client-visible prefix (Issued ≤
        // Dispatched ≤ Executed ≤ Replied, segments summing to the client
        // latency). The commitment phases run concurrently with the reply
        // and are deliberately not ordered against it.
        for s in &rep.spans {
            if let Err(e) = s.check_accounting() {
                panic!("span accounting: {e}");
            }
        }
        assert!(
            !res.telem.flush_spans.is_empty(),
            "wire flush spans recorded"
        );
        assert!(!res.net.rows.is_empty(), "net table populated");
        assert!(res.net.rows.iter().all(|r| r.frames > 0));
    }

    #[test]
    fn tcp_multiprocess_shape_in_threads() {
        // The external-address path, driven by in-process `serve_one`
        // nodes on their own threads: exercises the Peers gossip and the
        // wire-only stats/store collection that the `cx_net_server`
        // multi-process mode relies on.
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.0005)
            .build();
        let cfg = fast_cfg(2, Protocol::Cx);
        let (addr_tx, addr_rx) = unbounded();
        let mut nodes = Vec::new();
        for i in 0..cfg.servers {
            let cfg = cfg.clone();
            let seeds = trace.seeds.clone();
            let addr_tx = addr_tx.clone();
            nodes.push(thread::spawn(move || {
                serve_one(&cfg, ServerId(i), &seeds, |a| {
                    addr_tx.send((i, a)).unwrap();
                })
                .expect("serve_one binds");
            }));
        }
        let mut addrs = vec![None; cfg.servers as usize];
        for _ in 0..cfg.servers {
            let (i, a) = addr_rx.recv().unwrap();
            addrs[i as usize] = Some(a);
        }
        let addrs: Vec<SocketAddr> = addrs.into_iter().map(|a| a.unwrap()).collect();
        let res = TcpCluster::run_external(cfg, trace.to_stream(), &addrs, TcpOptions::default());
        assert_eq!(res.violations, vec![]);
        assert_eq!(res.stats.ops_total, trace.ops.len() as u64);
        for t in nodes {
            t.join().unwrap();
        }
    }

    #[test]
    fn tcp_multiprocess_spans_stitch_across_nodes() {
        // The full cross-process tracing story in miniature: server nodes
        // run with their own epochs and shard-mode sinks, ship their span
        // shards in `StopResp`, and the coordinator stitches them into its
        // recording sink with the probe-measured clock offsets. Every op
        // must come out with a server-stamped `Executed` milestone that
        // lands between the coordinator-stamped `Issued` and `Replied`.
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.0005)
            .build();
        let cfg = fast_cfg(2, Protocol::Cx);
        let (addr_tx, addr_rx) = unbounded();
        let mut nodes = Vec::new();
        for i in 0..cfg.servers {
            let cfg = cfg.clone();
            let seeds = trace.seeds.clone();
            let addr_tx = addr_tx.clone();
            nodes.push(thread::spawn(move || {
                let sopts = ServeOptions {
                    obs: true,
                    net: PlaneConfig {
                        record_flush_spans: true,
                        ..PlaneConfig::default()
                    },
                    metrics_out: None,
                };
                serve_one_opts(&cfg, ServerId(i), &seeds, sopts, |a| {
                    addr_tx.send((i, a)).unwrap();
                })
                .expect("serve_one binds");
            }));
        }
        let mut addrs = vec![None; cfg.servers as usize];
        for _ in 0..cfg.servers {
            let (i, a) = addr_rx.recv().unwrap();
            addrs[i as usize] = Some(a);
        }
        let addrs: Vec<SocketAddr> = addrs.into_iter().map(|a| a.unwrap()).collect();
        let sink = ObsSink::recording("cx");
        let opts = TcpOptions {
            obs: sink.clone(),
            ..TcpOptions::default()
        };
        let res = TcpCluster::run_external(cfg, trace.to_stream(), &addrs, opts);
        assert_eq!(res.violations, vec![]);
        for t in nodes {
            t.join().unwrap();
        }
        let rep = sink.report().expect("recording sink yields a report");
        assert_eq!(rep.spans.len(), trace.ops.len());
        // Merge completeness: ≥99% of spans must come back with a
        // server-stamped Executed milestone absorbed from a shard.
        let stitched = rep
            .spans
            .iter()
            .filter(|s| {
                s.at(Phase::Executed).is_some() && s.server[Phase::Executed.index()] != u32::MAX
            })
            .count();
        assert!(
            stitched * 100 >= rep.spans.len() * 99,
            "{stitched}/{} spans carry a server-stamped Executed",
            rep.spans.len()
        );
        // Stitching sanity: the offset estimate is only good to ±rtt/2,
        // but the absorb clamp pins every shard stamp inside its causal
        // interval — at or after the preceding coordinator stamp, at or
        // before the following one — so the sandwich is unconditional.
        for s in &rep.spans {
            let (Some(issued), Some(exec), Some(replied)) = (
                s.at(Phase::Issued),
                s.at(Phase::Executed),
                s.at(Phase::Replied),
            ) else {
                continue;
            };
            assert!(
                issued <= exec && exec <= replied,
                "op {:?}: stitched Executed ({exec}) outside [{issued}, {replied}]",
                s.op
            );
        }
        // The stitched view also carries the servers' wire telemetry and
        // their per-peer health rows.
        assert!(res.net.rows.iter().any(|r| r.on.starts_with("srv")));
    }
}
