//! Partitioned (parallel) DES execution.
//!
//! Splits one cluster simulation across P worker threads. Each partition
//! owns a contiguous slice of the servers plus a slice of the client
//! processes, runs its own timing-wheel kernel and virtual clock, and
//! synchronizes with its siblings only at *window* boundaries
//! (conservative PDES with lookahead — see `cx_sim::partition` and
//! `DesCluster::event_loop_windowed` for the two-barrier window protocol).
//!
//! ## Lookahead
//!
//! The window width is `cfg.net.one_way_ns`: every cross-partition
//! message is a network send, and the network model charges at least the
//! one-way latency (`one_way + bytes/bandwidth`), so an event executed at
//! `t < gmin + W` can only create remote work at `t + W' ≥ gmin + W` —
//! at or beyond the next window's horizon. Partitions therefore never
//! need to roll back, and mailbox arrivals never clamp to "now".
//!
//! ## Determinism
//!
//! For a fixed `(seed, parts)` pair a partitioned run is bit-for-bit
//! reproducible:
//!
//! * node → partition placement is pure arithmetic ([`PartitionMap`]);
//! * the shared op feed hands each process the same subsequence
//!   regardless of pull interleaving (the `OpFeed` contract);
//! * cross-partition mail merges in `(arrival time, source partition,
//!   source sequence)` order — no wall-clock anywhere.
//!
//! `parts == 1` takes the single-threaded path unchanged and reproduces
//! the golden digest bit-for-bit. `parts > 1` preserves every *total*
//! (ops, conflicts, commitments, WAL records) but may order same-tick
//! events differently than the single-threaded kernel, so the digest is
//! stable per `(seed, parts)` rather than across partition counts.

use crate::des::{ChaosOutcome, DesCluster};
use crate::fault::{ClusterSnapshot, FaultInjector};
use crate::feed::OpFeed;
use crate::stats::RunStats;
use cx_mdstore::{GlobalView, Violation};
use cx_obs::{FlightEvent, FlightRecorder, MetricRegistry, ObsSink};
use cx_protocol::Endpoint;
use cx_sim::{CrossEvent, Mailbox, PartitionBarrier};
use cx_types::{ClusterConfig, Payload};
use cx_workloads::StreamTrace;
use std::sync::{Arc, Mutex};

/// Pure-arithmetic node → partition placement. Servers and processes are
/// split into contiguous, near-equal ranges so partition p's servers are
/// `server_range(p)` and `GlobalView::merge` over partitions in order
/// visits servers in global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMap {
    pub servers: u32,
    pub procs: u32,
    pub parts: u32,
}

impl PartitionMap {
    pub fn new(servers: u32, procs: u32, parts: u32) -> Self {
        assert!(parts >= 1, "need at least one partition");
        assert!(
            parts <= servers,
            "more partitions ({parts}) than servers ({servers})"
        );
        Self {
            servers,
            procs,
            parts,
        }
    }

    /// Which partition owns server `s`.
    pub fn server_part(&self, s: u32) -> u32 {
        debug_assert!(s < self.servers);
        ((s as u64 * self.parts as u64) / self.servers as u64) as u32
    }

    /// The contiguous dense server indices partition `p` owns.
    pub fn server_range(&self, p: u32) -> std::ops::Range<usize> {
        let lo = (p as u64 * self.servers as u64).div_ceil(self.parts as u64);
        let hi = ((p as u64 + 1) * self.servers as u64).div_ceil(self.parts as u64);
        lo as usize..hi as usize
    }

    /// Which partition owns client process `i`.
    pub fn proc_part(&self, i: u32) -> u32 {
        if self.procs == 0 {
            return 0;
        }
        debug_assert!(i < self.procs);
        (((i as u64) * self.parts as u64) / self.procs as u64).min(self.parts as u64 - 1) as u32
    }
}

/// One cross-partition message: who sent it, who receives it, and the
/// already-computed arrival time (network latency applied at the sender).
pub(crate) struct NetEnvelope {
    pub from: Endpoint,
    pub to: Endpoint,
    pub payload: Payload,
}

/// Everything a `DesCluster` instance needs to act as one partition of a
/// partitioned run.
pub(crate) struct PartCtx {
    /// This partition's index.
    pub me: u32,
    pub pmap: PartitionMap,
    /// Conservative lookahead window (ns) — the minimum cross-partition
    /// message latency, i.e. `cfg.net.one_way_ns`.
    pub window_ns: u64,
    pub mailbox: Arc<Mailbox<NetEnvelope>>,
    pub barrier: Arc<PartitionBarrier>,
    /// Per-sender sequence for deterministic mailbox merge order.
    pub out_seq: u64,
    /// Reusable drain buffer (avoids a per-window allocation).
    pub inbox: Vec<CrossEvent<NetEnvelope>>,
}

// The partition workers move `DesCluster` values across threads; keep the
// whole runtime `Send` by construction (e.g. no `Rc`, injector is `Send`).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<DesCluster>();
};

/// Build the P partition clusters over one shared feed/mailbox/barrier.
fn build_partitions(
    cfg: &ClusterConfig,
    st: StreamTrace,
    parts: u32,
) -> (Vec<DesCluster>, Arc<Mutex<OpFeed>>, Arc<PartitionBarrier>) {
    let StreamTrace {
        name: _,
        processes,
        seeds,
        roots,
        total_ops_hint,
        ops,
    } = st;
    let window_ns = cfg.net.one_way_ns;
    assert!(window_ns > 0, "partitioned runs need a nonzero net latency");
    let pmap = PartitionMap::new(cfg.servers, processes, parts);
    let feed = Arc::new(Mutex::new(OpFeed::new(ops, processes, total_ops_hint)));
    let mailbox = Arc::new(Mailbox::new(parts as usize));
    let barrier = Arc::new(PartitionBarrier::new(parts));
    let clusters = (0..parts)
        .map(|me| {
            DesCluster::build(
                cfg.clone(),
                processes,
                &seeds,
                roots.clone(),
                Arc::clone(&feed),
                Some(PartCtx {
                    me,
                    pmap,
                    window_ns,
                    mailbox: Arc::clone(&mailbox),
                    barrier: Arc::clone(&barrier),
                    out_seq: 0,
                    inbox: Vec::new(),
                }),
            )
        })
        .collect();
    (clusters, feed, barrier)
}

/// Run every partition on its own thread, then merge their stats in
/// partition order (deterministic: placement is contiguous).
fn run_and_merge(
    cfg: &ClusterConfig,
    clusters: &mut [DesCluster],
    feed: &Mutex<OpFeed>,
    barrier: &PartitionBarrier,
) -> RunStats {
    std::thread::scope(|s| {
        for c in clusters.iter_mut() {
            s.spawn(|| c.run_partition());
        }
    });
    let mut stats = RunStats::new(cfg.protocol, cfg.servers, clusters[0].stats_ref().processes);
    for c in clusters.iter() {
        stats.absorb_partition(c.stats_ref());
    }
    if barrier.aborted() {
        // The capped partitions recorded their local in-flight ops; the
        // shared feed's remainder is global, charge it exactly once.
        stats.ops_stuck += feed.lock().expect("op feed").remaining();
    }
    stats
}

/// Publish per-partition registries and fold them into the caller's —
/// exactly the merge the exposition endpoint serves on partitioned runs.
fn publish_partitioned(clusters: &[DesCluster], reg: &MetricRegistry) {
    for c in clusters {
        let part_reg = MetricRegistry::new();
        c.stats_ref().publish(&part_reg);
        reg.merge_from(&part_reg);
    }
}

/// Partitioned replay of a streaming workload. `parts <= 1` runs the
/// plain single-threaded cluster (bit-identical digest); `parts > 1`
/// splits the cluster over `parts` worker threads.
pub fn run_stream_partitioned(
    cfg: ClusterConfig,
    st: StreamTrace,
    parts: u32,
) -> (RunStats, Vec<Violation>) {
    run_stream_partitioned_obs(cfg, st, parts, ObsSink::Off, None)
}

/// [`run_stream_partitioned`] with an observability sink and an optional
/// metric registry (per-partition registries are merged into it).
pub fn run_stream_partitioned_obs(
    cfg: ClusterConfig,
    st: StreamTrace,
    parts: u32,
    sink: ObsSink,
    reg: Option<&MetricRegistry>,
) -> (RunStats, Vec<Violation>) {
    if parts <= 1 {
        let (stats, violations) = DesCluster::new_stream(cfg, st).with_obs(sink).run();
        if let Some(reg) = reg {
            stats.publish(reg);
        }
        return (stats, violations);
    }
    let roots = st.roots.clone();
    let (mut clusters, feed, barrier) = build_partitions(&cfg, st, parts);
    if sink.enabled() {
        clusters = clusters
            .into_iter()
            .map(|c| c.with_obs(sink.clone()))
            .collect();
    }
    let mut stats = run_and_merge(&cfg, &mut clusters, &feed, &barrier);
    // The sink is shared, so the stuck report is global — read it once.
    // Same for the blame table: partitions already fed one recorder.
    stats.stuck_ops = sink.stuck_report();
    stats.blame = sink.blame_table();
    if let Some(reg) = reg {
        publish_partitioned(&clusters, reg);
    }
    // Partition order × contiguous server ranges = global server order.
    let view = GlobalView::merge(clusters.iter().flat_map(|c| c.local_stores()));
    let violations = view.check(&roots);
    (stats, violations)
}

/// Partitioned fault-injected replay. The injector is the single global
/// fault authority: all partitions feed it through one mutex, and crash
/// commands execute only on the server's owner partition.
pub fn run_chaos_partitioned(
    cfg: ClusterConfig,
    st: StreamTrace,
    parts: u32,
    injector: Box<dyn FaultInjector>,
    sink: ObsSink,
    flight: Option<FlightRecorder>,
) -> ChaosOutcome {
    if parts <= 1 {
        let mut c = DesCluster::new_stream(cfg, st)
            .with_injector(injector)
            .with_obs(sink);
        if let Some(fl) = flight {
            c = c.with_flight(fl);
        }
        return c.run_chaos();
    }
    let roots = st.roots.clone();
    let shared: Arc<Mutex<Box<dyn FaultInjector>>> = Arc::new(Mutex::new(injector));
    let (mut clusters, feed, barrier) = build_partitions(&cfg, st, parts);
    for c in clusters.iter_mut() {
        c.install_shared_injector(Arc::clone(&shared));
    }
    clusters = clusters
        .into_iter()
        .map(|c| {
            let mut c = c.with_obs(sink.clone());
            if let Some(fl) = &flight {
                c = c.with_flight(fl.clone());
            }
            c
        })
        .collect();
    let mut stats = run_and_merge(&cfg, &mut clusters, &feed, &barrier);

    // Mirror the single-threaded wedge accounting: unissued feed ops plus
    // every partition's in-flight clients.
    let in_flight: u64 = clusters.iter().map(|c| c.local_in_flight()).sum();
    let stuck = feed.lock().expect("op feed").remaining() + in_flight;
    stats.ops_stuck = stats.ops_stuck.max(stuck);
    stats.stuck_ops = sink.stuck_report();
    stats.blame = sink.blame_table();
    if let Some(fl) = &flight {
        for s in &stats.stuck_ops {
            fl.push(
                stats.drained.0,
                FlightEvent::Stuck {
                    op: s.op,
                    phase: s.phase,
                },
            );
        }
    }

    let quiesced = clusters.iter().all(|c| c.local_quiesced());
    let view = GlobalView::merge(clusters.iter().flat_map(|c| c.local_stores()));
    let violations = if quiesced {
        view.check(&roots)
    } else {
        Vec::new()
    };

    // Coordinator-side op logs: partitions recorded only their local
    // clients' ops; merge and re-sort into global ack/issue order.
    let mut acks = Vec::new();
    let mut issued = Vec::new();
    for c in clusters.iter_mut() {
        let (a, i) = c.take_op_logs();
        acks.extend(a);
        issued.extend(i);
    }
    acks.sort_by_key(|a| (a.at, a.op));
    issued.sort_by_key(|(op, _)| *op);

    // One global oracle pass over the merged cluster (partitions skip
    // their mid-run oracle checks — they only see local stores).
    let oracle_report = {
        let mut inj = shared.lock().expect("injector");
        let snap = ClusterSnapshot {
            stores: clusters.iter().flat_map(|c| c.local_stores()).collect(),
            acks: &acks,
            issued: &issued,
        };
        let v = inj.on_run_end(stats.drained, quiesced, snap);
        stats.faults.oracle_checks += 1;
        stats.faults.oracle_violations += v;
        inj.take_report()
    };

    ChaosOutcome {
        stats,
        violations,
        oracle_report,
        quiesced,
        acks,
        issued,
        view,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_contiguous_and_total() {
        for (servers, parts) in [(8u32, 4u32), (8, 3), (5, 2), (4, 4), (7, 1)] {
            let pm = PartitionMap::new(servers, 16, parts);
            let mut covered = 0usize;
            for p in 0..parts {
                let r = pm.server_range(p);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                for s in r.clone() {
                    assert_eq!(pm.server_part(s as u32), p, "range/part must agree");
                }
                covered = r.end;
            }
            assert_eq!(covered, servers as usize, "every server placed");
        }
    }

    #[test]
    fn proc_placement_covers_all_partitions_when_possible() {
        let pm = PartitionMap::new(8, 16, 4);
        let mut seen = vec![0u32; 4];
        for i in 0..16 {
            seen[pm.proc_part(i) as usize] += 1;
        }
        assert_eq!(seen, vec![4, 4, 4, 4]);
        // Monotone: contiguous proc blocks per partition.
        for i in 1..16 {
            assert!(pm.proc_part(i) >= pm.proc_part(i - 1));
        }
    }

    #[test]
    fn uneven_splits_stay_in_bounds() {
        let pm = PartitionMap::new(8, 3, 3);
        for s in 0..8 {
            assert!(pm.server_part(s) < 3);
        }
        for i in 0..3 {
            assert!(pm.proc_part(i) < 3);
        }
    }
}
