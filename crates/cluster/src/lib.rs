//! Cluster assembly: the two runtimes that interpret the sans-IO protocol
//! engines.
//!
//! * [`des`] — the deterministic discrete-event simulation used for every
//!   paper experiment: a network model (latency + bandwidth), per-server
//!   CPU queues, and the `cx-simio` disk model (group commit, elevator
//!   merging). Replays a [`cx_workloads::Trace`] and produces a
//!   [`RunStats`] with everything the paper's tables and figures report.
//! * [`threaded`] — a real multi-threaded runtime (one OS thread per
//!   metadata server, crossbeam channels as the network) exercising the
//!   same engines under true concurrency; used by the integration tests
//!   and the Criterion micro-benchmarks.
//! * [`tcp`] — the same engines over real loopback TCP via `cx-net`
//!   (length-prefixed wire frames, reconnecting connection managers,
//!   per-peer health); runs in-process or one OS process per server,
//!   with the DES as its oracle for the run totals.

pub mod des;
pub mod fault;
pub mod feed;
pub mod par;
pub mod stats;
pub mod tcp;
pub mod threaded;

pub use cx_net::WireTotals;
pub use cx_obs::{FlightRecorder, MetricRegistry, ObsConfig, ObsReport, ObsSink};
pub use des::{run_stream_trace, run_trace, ChaosOutcome, CrashPlan, DesCluster, RecoveryReport};
pub use fault::{ClusterSnapshot, CrashCmd, FaultEvent, FaultInjector, MsgFate, NoFaults};
pub use feed::OpFeed;
pub use par::{
    run_chaos_partitioned, run_stream_partitioned, run_stream_partitioned_obs, PartitionMap,
};
pub use stats::{AckRecord, FaultStats, LatencyStat, RecoveryCycle, RunStats, TimelineSample};
pub use tcp::{serve_one, serve_one_opts, ServeOptions, TcpCluster, TcpOptions, TcpRunResult};
pub use threaded::{LiveMetrics, ThreadedCluster, ThreadedRunResult};
