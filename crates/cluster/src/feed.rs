//! Per-process operation intake over a pull-based workload stream.
//!
//! Both runtimes replay a trace as per-process synchronous queues, but a
//! [`StreamTrace`] yields ops in *global* order. [`OpFeed`] bridges the
//! two: each pull from the stream is routed to its process's buffer, and
//! a process asking for its next op drains the stream just far enough.
//! Per-process subsequences — the only order the replay observes — are
//! exactly those of the materialized trace, so simulator behavior (and
//! the run digest) is byte-identical between the two intake paths.

use cx_types::FsOp;
use cx_workloads::OpStream;
use std::collections::VecDeque;

pub struct OpFeed {
    source: Box<dyn OpStream + Send>,
    buffers: Vec<VecDeque<FsOp>>,
    exhausted: bool,
    /// Ops pulled out of the source so far.
    pulled: u64,
    total_hint: u64,
}

impl OpFeed {
    /// Wrap a stream and pre-pull until every process has at least one
    /// buffered op (or the stream ends): afterwards, a process with an
    /// empty buffer provably has no ops in the whole trace, which is
    /// exactly the materialized path's boot-time `done` condition.
    pub fn new(source: Box<dyn OpStream + Send>, processes: u32, total_hint: u64) -> Self {
        let mut feed = Self {
            source,
            buffers: (0..processes).map(|_| VecDeque::new()).collect(),
            exhausted: false,
            pulled: 0,
            total_hint,
        };
        let mut empty = feed.buffers.len();
        while empty > 0 && !feed.exhausted {
            match feed.source.next_op() {
                Some(t) => {
                    feed.pulled += 1;
                    let b = &mut feed.buffers[t.proc.client.0 as usize];
                    if b.is_empty() {
                        empty -= 1;
                    }
                    b.push_back(t.op);
                }
                None => feed.exhausted = true,
            }
        }
        feed
    }

    /// Whether `proc` has no ops at all (valid right after construction).
    pub fn starts_empty(&self, proc: u32) -> bool {
        self.buffers[proc as usize].is_empty()
    }

    /// Next op for `proc`, pulling the source forward as needed.
    pub fn next_for(&mut self, proc: u32) -> Option<FsOp> {
        loop {
            if let Some(op) = self.buffers[proc as usize].pop_front() {
                return Some(op);
            }
            if self.exhausted {
                return None;
            }
            match self.source.next_op() {
                Some(t) => {
                    self.pulled += 1;
                    self.buffers[t.proc.client.0 as usize].push_back(t.op);
                }
                None => self.exhausted = true,
            }
        }
    }

    /// Ops not yet handed to any process: buffered plus (estimated) still
    /// in the source. Exact for vec- and generator-backed streams, a
    /// lower bound under the injection adapter.
    pub fn remaining(&self) -> u64 {
        let buffered: u64 = self.buffers.iter().map(|b| b.len() as u64).sum();
        if self.exhausted {
            buffered
        } else {
            buffered + self.total_hint.saturating_sub(self.pulled)
        }
    }

    pub fn total_hint(&self) -> u64 {
        self.total_hint
    }
}
