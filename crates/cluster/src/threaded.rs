//! A real multi-threaded runtime for the protocol engines.
//!
//! One OS thread per metadata server, one per client process, crossbeam
//! channels as the network. Disk completions are immediate (the threaded
//! runtime checks protocol *correctness under true concurrency*, not
//! timing — timing is the DES's job); timers run on a dedicated timer
//! thread at wall-clock rate, so tests configure short trigger periods.
//!
//! This runtime deliberately shares every line of protocol code with the
//! simulation: the engines cannot tell which runtime drives them.

use crate::feed::OpFeed;
use crate::stats::RunStats;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use cx_mdstore::{GlobalView, MetaStore, Violation};
use cx_obs::registry::{Counter, MetricRegistry, Series};
use cx_protocol::{
    Action, ClientDecision, ClientOp, Endpoint, ProtoMetrics, ServerEngine, ServerStats,
};
use cx_sim::TimerQueue;
use cx_types::{
    ClusterConfig, FileKind, OpId, OpOutcome, Payload, Placement, ProcId, Protocol, ServerId,
    SimTime,
};
use cx_workloads::{SeedEntry, StreamTrace, Trace};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

enum ServerMsg {
    Net { from: Endpoint, payload: Payload },
    Timer { token: u64 },
    Quiesce,
    Probe(Sender<bool>),
    Stop(Sender<(MetaStore, ServerStats, ProtoMetrics)>),
}

enum ProcMsg {
    Net { from: Endpoint, payload: Payload },
}

#[derive(Clone)]
struct Router {
    servers: Arc<Vec<Sender<ServerMsg>>>,
    procs: Arc<Vec<Sender<ProcMsg>>>,
    timers: Sender<TimerReq>,
    epoch: Instant,
}

impl Router {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&self, from: Endpoint, to: Endpoint, payload: Payload) {
        match to {
            Endpoint::Server(s) => {
                let _ = self.servers[s.0 as usize].send(ServerMsg::Net { from, payload });
            }
            Endpoint::Proc(p) => {
                let _ = self.procs[p.client.0 as usize].send(ProcMsg::Net { from, payload });
            }
        }
    }
}

struct TimerReq {
    fire_at: Instant,
    server: u32,
    token: u64,
}

/// Result of a threaded run.
pub struct ThreadedRunResult {
    pub stats: RunStats,
    pub violations: Vec<Violation>,
    pub wall: Duration,
}

/// Live-exposition settings for a threaded run: client threads publish
/// into `registry` concurrently while the run executes, and — when `out`
/// is set — a monitor thread writes `<out>.prom` (Prometheus text) and
/// `<out>.json` (a [`cx_obs::MetricsSnapshot`], the input of `cx-obs top`)
/// every `period`, plus once more after the final server state lands.
pub struct LiveMetrics {
    pub registry: MetricRegistry,
    pub out: Option<std::path::PathBuf>,
    pub period: Duration,
}

impl LiveMetrics {
    pub fn new(registry: MetricRegistry) -> Self {
        Self {
            registry,
            out: None,
            period: Duration::from_millis(500),
        }
    }

    pub(crate) fn write_files(registry: &MetricRegistry, out: &std::path::Path) {
        let snap = registry.snapshot();
        let _ = std::fs::write(out.with_extension("prom"), snap.to_prometheus_text());
        let _ = std::fs::write(out.with_extension("json"), snap.to_json());
    }
}

/// The multi-threaded cluster.
pub struct ThreadedCluster;

impl ThreadedCluster {
    /// Run `trace` on real threads. Panics on channel failures (test
    /// runtime); returns outcomes, aggregated stats, and the consistency
    /// check result.
    pub fn run(cfg: ClusterConfig, trace: &Trace) -> ThreadedRunResult {
        Self::run_stream(cfg, trace.to_stream())
    }

    /// Streamed form: client threads pull their next op from a shared
    /// [`OpFeed`] over the workload stream instead of pre-built queues,
    /// so memory stays flat regardless of trace length.
    pub fn run_stream(cfg: ClusterConfig, st: StreamTrace) -> ThreadedRunResult {
        Self::run_stream_obs(cfg, st, cx_obs::ObsSink::Off)
    }

    /// Like [`ThreadedCluster::run_stream`] with an observability sink
    /// installed into every engine and carried by every client thread (the
    /// sink is `Arc<Mutex<…>>`-backed, so one recorder serves them all).
    /// Clients emit issue/reply lifecycle events and latencies; engines
    /// stamp commitment completion. The threaded runtime has no virtual
    /// clock; stamps use its wall-clock-derived `now` values, which is
    /// sufficient for phase *ordering* and count checks.
    pub fn run_stream_obs(
        cfg: ClusterConfig,
        st: StreamTrace,
        obs: cx_obs::ObsSink,
    ) -> ThreadedRunResult {
        Self::run_stream_inner(cfg, st, obs, None)
    }

    /// Like [`ThreadedCluster::run_stream_obs`], additionally publishing
    /// live metrics: clients bump the registry's atomic counters as
    /// operations complete, engines contribute their protocol series when
    /// they stop, and the optional monitor thread keeps the on-disk
    /// exposition files fresh for `cx-obs top` / Prometheus scraping.
    pub fn run_stream_live(
        cfg: ClusterConfig,
        st: StreamTrace,
        obs: cx_obs::ObsSink,
        live: LiveMetrics,
    ) -> ThreadedRunResult {
        Self::run_stream_inner(cfg, st, obs, Some(live))
    }

    fn run_stream_inner(
        cfg: ClusterConfig,
        st: StreamTrace,
        obs: cx_obs::ObsSink,
        live: Option<LiveMetrics>,
    ) -> ThreadedRunResult {
        let StreamTrace {
            name: _,
            processes,
            seeds,
            roots,
            total_ops_hint,
            ops,
        } = st;
        let start = Instant::now();
        let placement = Placement::new(cfg.servers);

        // Channels.
        let mut server_tx = Vec::new();
        let mut server_rx = Vec::new();
        for _ in 0..cfg.servers {
            let (tx, rx) = unbounded::<ServerMsg>();
            server_tx.push(tx);
            server_rx.push(rx);
        }
        let mut proc_tx = Vec::new();
        let mut proc_rx = Vec::new();
        for _ in 0..processes {
            let (tx, rx) = unbounded::<ProcMsg>();
            proc_tx.push(tx);
            proc_rx.push(rx);
        }
        let (timer_tx, timer_rx) = unbounded::<TimerReq>();
        let router = Router {
            servers: Arc::new(server_tx),
            procs: Arc::new(proc_tx),
            timers: timer_tx,
            epoch: start,
        };

        // Timer thread. It receives only the server senders — holding a
        // full Router clone would keep a sender to its own channel alive
        // and the loop would never observe the disconnect that stops it.
        let timer_servers = Arc::clone(&router.servers);
        let timer_thread = thread::spawn(move || timer_loop(timer_rx, timer_servers));

        // Server threads.
        let mut server_threads = Vec::new();
        for (i, rx) in server_rx.into_iter().enumerate() {
            let mut engine = cx_protocol::make_server(ServerId(i as u32), &cfg);
            engine.install_obs(obs.clone());
            seed_engine(engine.as_mut(), &placement, &seeds, ServerId(i as u32));
            let r = router.clone();
            server_threads.push(thread::spawn(move || server_loop(i as u32, engine, rx, r)));
        }

        // Live-exposition monitor: refresh the on-disk snapshot files at
        // the configured period until the run signals completion.
        let live_reg = live.as_ref().map(|l| l.registry.clone());
        let monitor_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let monitor_thread = live.as_ref().and_then(|l| {
            let out = l.out.clone()?;
            let reg = l.registry.clone();
            let period = l.period;
            let stop = Arc::clone(&monitor_stop);
            Some(thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    LiveMetrics::write_files(&reg, &out);
                    thread::sleep(period);
                }
            }))
        });

        // Client threads, sharing one locked feed over the stream.
        let outcomes = Arc::new(Mutex::new(Vec::<(OpId, OpOutcome, bool)>::new()));
        let feed = Arc::new(Mutex::new(OpFeed::new(ops, processes, total_ops_hint)));
        let mut client_threads = Vec::new();
        for (i, rx) in proc_rx.into_iter().enumerate() {
            let r = router.clone();
            let cfg = cfg.clone();
            let outcomes = Arc::clone(&outcomes);
            let feed = Arc::clone(&feed);
            let obs = obs.clone();
            let reg = live_reg.clone();
            client_threads.push(thread::spawn(move || {
                client_loop(i as u32, feed, rx, r, &cfg, placement, outcomes, obs, reg)
            }));
        }
        for t in client_threads {
            t.join().expect("client thread panicked");
        }

        // Drain the servers: quiesce until every engine reports done.
        for _ in 0..200 {
            for tx in router.servers.iter() {
                let _ = tx.send(ServerMsg::Quiesce);
            }
            thread::sleep(Duration::from_millis(2));
            let mut all = true;
            for tx in router.servers.iter() {
                let (ptx, prx) = bounded(1);
                let _ = tx.send(ServerMsg::Probe(ptx));
                if !prx.recv_timeout(Duration::from_secs(5)).unwrap_or(false) {
                    all = false;
                }
            }
            if all {
                break;
            }
        }

        // Collect final state.
        let mut stats = RunStats::new(cfg.protocol, cfg.servers, processes);
        let mut stores = Vec::new();
        for tx in router.servers.iter() {
            let (stx, srx) = bounded(1);
            let _ = tx.send(ServerMsg::Stop(stx));
            let (store, sstats, proto) = srx.recv().expect("server final state");
            stats.server_stats.merge(&sstats);
            stats.proto.merge(&proto);
            stores.push(store);
        }
        drop(router); // stops the timer thread (channel disconnect)
        let _ = timer_thread.join();

        for (_, outcome, cross) in outcomes.lock().iter() {
            stats.record_outcome(*outcome);
            stats.ops_total += 1;
            if *cross {
                stats.cross_ops += 1;
            }
        }
        stats.stuck_ops = obs.stuck_report();
        stats.blame = obs.blame_table();
        if let Some(l) = &live {
            // Engines only report their protocol series at stop time;
            // fold them in and refresh the exposition files once more so
            // the final snapshot is complete.
            stats.proto.publish(&l.registry);
            monitor_stop.store(true, std::sync::atomic::Ordering::Relaxed);
            if let Some(t) = monitor_thread {
                let _ = t.join();
            }
            if let Some(out) = &l.out {
                LiveMetrics::write_files(&l.registry, out);
            }
        }
        let violations = GlobalView::merge(stores.iter()).check(&roots);
        ThreadedRunResult {
            stats,
            violations,
            wall: start.elapsed(),
        }
    }
}

pub(crate) fn seed_engine(
    engine: &mut dyn ServerEngine,
    placement: &Placement,
    seeds: &[SeedEntry],
    me: ServerId,
) {
    for seed in seeds {
        match *seed {
            SeedEntry::Dir { ino } => {
                engine.store_mut().seed_inode(ino, FileKind::Directory, 1);
            }
            SeedEntry::File { parent, name, ino } => {
                if placement.dentry_server(parent, name) == me {
                    engine.store_mut().seed_dentry(parent, name, ino);
                }
                if placement.inode_server(ino) == me {
                    engine.store_mut().seed_inode(ino, FileKind::Regular, 1);
                }
            }
        }
    }
}

fn server_loop(
    me: u32,
    mut engine: Box<dyn ServerEngine>,
    rx: Receiver<ServerMsg>,
    router: Router,
) {
    let from_me = Endpoint::Server(ServerId(me));
    let mut boot = Vec::new();
    engine.on_start(router.now(), &mut boot);
    process_actions(me, engine.as_mut(), boot, &router);

    while let Ok(msg) = rx.recv() {
        let now = router.now();
        match msg {
            ServerMsg::Net { from, payload } => {
                let mut out = Vec::new();
                engine.on_msg(now, from, payload, &mut out);
                process_actions(me, engine.as_mut(), out, &router);
            }
            ServerMsg::Timer { token } => {
                let mut out = Vec::new();
                engine.on_timer(now, token, &mut out);
                process_actions(me, engine.as_mut(), out, &router);
            }
            ServerMsg::Quiesce => {
                let mut out = Vec::new();
                engine.quiesce(now, &mut out);
                process_actions(me, engine.as_mut(), out, &router);
            }
            ServerMsg::Probe(reply) => {
                let _ = reply.send(engine.is_quiesced());
            }
            ServerMsg::Stop(reply) => {
                let _ = reply.send((
                    engine.store().clone(),
                    *engine.stats(),
                    engine.proto_metrics(),
                ));
                return;
            }
        }
        let _ = from_me;
    }
}

/// Interpret engine actions; disk operations complete immediately (their
/// completions can cascade, so a work queue avoids recursion).
fn process_actions(me: u32, engine: &mut dyn ServerEngine, actions: Vec<Action>, router: &Router) {
    let from = Endpoint::Server(ServerId(me));
    let mut work: VecDeque<Action> = actions.into();
    while let Some(action) = work.pop_front() {
        match action {
            Action::Send { to, payload } => router.send(from, to, payload),
            Action::LogAppend { token, .. }
            | Action::DbSyncWrite { token, .. }
            | Action::DbWriteback { token, .. }
            | Action::LogRead { token, .. }
            | Action::DbRandomRead { token, .. } => {
                let mut out = Vec::new();
                engine.on_disk_done(router.now(), token, &mut out);
                work.extend(out);
            }
            Action::SetTimer { token, delay_ns } => {
                let _ = router.timers.send(TimerReq {
                    fire_at: Instant::now() + Duration::from_nanos(delay_ns),
                    server: me,
                    token,
                });
            }
        }
    }
}

fn timer_loop(rx: Receiver<TimerReq>, servers: Arc<Vec<Sender<ServerMsg>>>) {
    // The DES kernel's TimerQueue orders equal deadlines FIFO, so two
    // timers armed for the same instant fire in arrival order — the ad-hoc
    // BinaryHeap this replaces left that tie unspecified.
    let epoch = Instant::now();
    let mut queue: TimerQueue<(u32, u64)> = TimerQueue::new();
    loop {
        let timeout = queue
            .peek_deadline()
            .map(|d| (epoch + Duration::from_nanos(d.0)).saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(req) => {
                let at = SimTime(req.fire_at.saturating_duration_since(epoch).as_nanos() as u64);
                queue.push(at, (req.server, req.token));
            }
            Err(RecvTimeoutError::Timeout) => {}
            // every Router clone is gone: the run is over
            Err(RecvTimeoutError::Disconnected) => return,
        }
        let now = SimTime(Instant::now().duration_since(epoch).as_nanos() as u64);
        while queue.peek_deadline().is_some_and(|d| d <= now) {
            let (_, (server, token)) = queue.pop().expect("peeked");
            let _ = servers[server as usize].send(ServerMsg::Timer { token });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn client_loop(
    me: u32,
    feed: Arc<Mutex<OpFeed>>,
    rx: Receiver<ProcMsg>,
    router: Router,
    cfg: &ClusterConfig,
    placement: Placement,
    outcomes: Arc<Mutex<Vec<(OpId, OpOutcome, bool)>>>,
    obs: cx_obs::ObsSink,
    registry: Option<MetricRegistry>,
) {
    let proc = ProcId::new(me, 0);
    let from_me = Endpoint::Proc(proc);
    let mut seq = 0u64;
    loop {
        // bind first: a `while let` scrutinee would hold the feed lock
        // across the synchronous wait below, serializing every client
        let next = feed.lock().next_for(me);
        let Some(op) = next else {
            return;
        };
        let op_id = OpId::new(proc, seq);
        seq += 1;
        let plan = placement.plan(op);
        let cross = plan.is_cross_server();
        let issued_at = router.now();
        obs.op_issued(op_id, op.class(), cross, issued_at);
        let mut out = Vec::new();
        let mut client = ClientOp::start(cfg.protocol, op_id, plan, &cfg.cx, &mut out);
        let mut timer: Option<(Instant, u64)> = None;
        send_client_actions(&router, from_me, out, &mut timer);

        // Wait for this operation to finish (clients are synchronous).
        let outcome = loop {
            let wait = timer
                .map(|(at, _)| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_secs(30));
            match rx.recv_timeout(wait) {
                Ok(ProcMsg::Net { from, payload }) => {
                    let mut out = Vec::new();
                    let d = client.on_msg(router.now(), from, payload, &mut out);
                    send_client_actions(&router, from_me, out, &mut timer);
                    if let ClientDecision::Done(outcome) = d {
                        break outcome;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let Some((_, token)) = timer.take() else {
                        panic!("client {me} timed out waiting for op {op_id}");
                    };
                    let mut out = Vec::new();
                    let d = client.on_timer(router.now(), token, &mut out);
                    send_client_actions(&router, from_me, out, &mut timer);
                    if let ClientDecision::Done(outcome) = d {
                        break outcome;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let done = router.now();
        // Only Cx leaves commitment running behind the reply; its engine
        // stamps `Completed` through the same sink when the ack lands.
        let awaits = cross && cfg.protocol == Protocol::Cx;
        obs.op_replied(op_id, done, outcome, awaits);
        let latency = done.0.saturating_sub(issued_at.0);
        obs.client_latency(op.class(), cross, latency);
        if let Some(reg) = &registry {
            // Concurrent atomic bumps from every client thread; the
            // registry property test pins that these merge exactly.
            reg.inc(Counter::OpsIssued);
            reg.inc(match outcome {
                OpOutcome::Applied => Counter::OpsApplied,
                OpOutcome::Failed => Counter::OpsFailed,
            });
            if cross {
                reg.inc(Counter::CrossOps);
            }
            reg.observe(Series::ClientLatencyNs, latency);
        }
        outcomes.lock().push((op_id, outcome, cross));
    }
}

fn send_client_actions(
    router: &Router,
    from: Endpoint,
    actions: Vec<Action>,
    timer: &mut Option<(Instant, u64)>,
) {
    for action in actions {
        match action {
            Action::Send { to, payload } => router.send(from, to, payload),
            Action::SetTimer { token, delay_ns } => {
                *timer = Some((Instant::now() + Duration::from_nanos(delay_ns), token));
            }
            other => unreachable!("clients have no disks: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::{BatchTrigger, Protocol};
    use cx_workloads::{Metarates, MetaratesMix, TraceBuilder, TraceProfile};

    fn fast_cfg(servers: u32, protocol: Protocol) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(servers, protocol);
        // wall-clock triggers must be short in tests
        cfg.cx.trigger = BatchTrigger::Timeout {
            period_ns: 5_000_000, // 5 ms
        };
        cfg.cx.hint_mismatch_timeout_ns = 20_000_000;
        cfg
    }

    #[test]
    fn threaded_trace_replay_is_consistent() {
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.001)
            .build();
        for protocol in [Protocol::Cx, Protocol::Se, Protocol::SeBatched] {
            let res = ThreadedCluster::run(fast_cfg(4, protocol), &trace);
            assert_eq!(res.violations, vec![], "{protocol:?}");
            assert_eq!(res.stats.ops_total, trace.ops.len() as u64, "{protocol:?}");
        }
    }

    #[test]
    fn threaded_metarates_under_contention() {
        let trace = Metarates::new(MetaratesMix::UpdateDominated, 8)
            .seed_files(64)
            .ops_per_proc(50)
            .build();
        let res = ThreadedCluster::run(fast_cfg(2, Protocol::Cx), &trace);
        assert_eq!(res.violations, vec![]);
        assert_eq!(res.stats.ops_total, 8 * 50);
        // real concurrency must still commit everything
        assert!(res.stats.server_stats.ops_committed > 0);
    }

    #[test]
    fn threaded_twopc_and_ce_complete() {
        let trace = TraceBuilder::new(TraceProfile::by_name("home2").unwrap())
            .scale(0.0002)
            .build();
        for protocol in [Protocol::TwoPc, Protocol::Ce] {
            let res = ThreadedCluster::run(fast_cfg(4, protocol), &trace);
            assert_eq!(res.violations, vec![], "{protocol:?}");
            assert_eq!(res.stats.ops_total, trace.ops.len() as u64, "{protocol:?}");
        }
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use cx_types::{BatchTrigger, Protocol};
    use cx_workloads::{TraceBuilder, TraceProfile};

    /// Heavier concurrency: a conflict-rich slice with short wall-clock
    /// triggers, checking that invalidations/immediate commitments under
    /// true parallelism still converge to a consistent namespace.
    #[test]
    fn threaded_conflict_storm_converges() {
        let trace = TraceBuilder::new(TraceProfile::by_name("deasna2").unwrap())
            .scale(0.0006)
            .tweak(|p| p.shared_access_prob = 0.3)
            .build();
        let mut cfg = ClusterConfig::new(4, Protocol::Cx);
        cfg.cx.trigger = BatchTrigger::Timeout {
            period_ns: 3_000_000, // 3 ms wall clock
        };
        cfg.cx.hint_mismatch_timeout_ns = 15_000_000;
        cfg.cx.presumed_abort_timeout_ns = 30_000_000;
        let res = ThreadedCluster::run(cfg, &trace);
        assert_eq!(res.violations, vec![]);
        assert_eq!(res.stats.ops_total, trace.ops.len() as u64);
        assert!(
            res.stats.server_stats.conflicts > 0,
            "the storm must actually produce conflicts"
        );
    }

    /// The same engines under failure injection and real threads.
    #[test]
    fn threaded_failure_injection_stays_atomic() {
        let trace = TraceBuilder::new(TraceProfile::by_name("s3d").unwrap())
            .scale(0.0008)
            .build();
        let mut cfg = ClusterConfig::new(4, Protocol::Cx);
        cfg.cx.trigger = BatchTrigger::Threshold { pending_ops: 16 };
        cfg.failure.subop_fail_prob = 0.03;
        let res = ThreadedCluster::run(cfg, &trace);
        assert_eq!(res.violations, vec![]);
        assert!(res.stats.ops_failed > 0, "injected failures surface");
        assert_eq!(res.stats.ops_total, trace.ops.len() as u64);
    }
}
