//! The discrete-event cluster simulation.
//!
//! Models what the paper's testbed provides (§IV-B): metadata servers with
//! one CPU queue and one 7200 rpm SATA disk each, a 10 GigE network, and
//! client nodes running synchronous processes. Interprets the protocol
//! engines' actions:
//!
//! * `Send` → arrival after `one_way + size/bandwidth`; at the server the
//!   message waits in the CPU queue (a [`FifoResource`]) before handling.
//! * `LogAppend`/`DbSyncWrite`/`DbWriteback`/`LogRead` → submitted to the
//!   server's [`Disk`], which group-commits appends and elevator-merges
//!   write-back pages.
//! * `SetTimer` → a virtual-time timer event.
//!
//! The run replays a [`Trace`]: each process issues its operations
//! synchronously (closed loop); "replay time" is the virtual time at which
//! the last operation response arrives, matching the paper's metric.

use crate::fault::{ClusterSnapshot, CrashCmd, FaultEvent, FaultInjector, MsgFate};
use crate::feed::OpFeed;
use crate::par::{NetEnvelope, PartCtx};
use crate::stats::{AckRecord, RecoveryCycle, RunStats, TimelineSample};
use cx_mdstore::{GlobalView, Violation};
use cx_obs::flow::MsgKind as FlowKind;
use cx_obs::{FlightEvent, FlightRecorder, FlowNode, GaugeKind, ObsSink, Phase};
use cx_protocol::{Action, ClientDecision, ClientOp, Endpoint, ServerEngine};
use cx_sim::{CrossEvent, FifoResource, Sim};
use cx_simio::{Batch, Disk, DiskReq};
use cx_types::{
    ClusterConfig, FileKind, FsOp, MsgKind, OpId, Payload, Placement, ProcId, Protocol, ServerId,
    SimTime, DUR_US,
};
use cx_wal::RecordFamily;
use cx_workloads::{SeedEntry, StreamTrace, Trace};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Client-side overhead between completing one op and issuing the next.
const CLIENT_ISSUE_NS: u64 = 15 * DUR_US;
/// CPU cost per entry of a batched commitment message.
const PER_ENTRY_NS: u64 = 3 * DUR_US;

// Messages move through the plane by value and are never cloned on the
// delivery path: `send` moves the payload into the event, the simulator's
// slab (see `cx-sim::kernel`) parks it while only a 24-byte handle is
// sorted, and the engine receives it back by move. The one remaining
// `Payload::clone` is the duplication fault, which genuinely needs two
// copies in flight.
enum Ev {
    /// A message reached the server NIC; queue it on the CPU.
    ServerArrive {
        server: u32,
        from: Endpoint,
        payload: Payload,
    },
    /// The CPU got to the message; run the engine.
    ServerHandle {
        server: u32,
        from: Endpoint,
        payload: Payload,
    },
    /// A disk batch finished.
    DiskDone {
        server: u32,
        tokens: Vec<u64>,
        /// Disk incarnation the batch belonged to; stale completions from
        /// before a crash are discarded.
        generation: u64,
    },
    ServerTimer {
        server: u32,
        token: u64,
    },
    ProcDeliver {
        proc: u32,
        from: Endpoint,
        payload: Payload,
    },
    ProcTimer {
        proc: u32,
        token: u64,
    },
    ProcIssue {
        proc: u32,
    },
    /// A crashed server finished rebooting: start its recovery.
    Reboot {
        server: u32,
    },
}

/// When and how to crash a server mid-run (the Table V experiment).
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    pub server: ServerId,
    /// Crash once this server's valid-record volume reaches this size.
    pub valid_bytes_target: u64,
    /// Failure-detection delay before the reboot begins (§III-D: "the
    /// recovery process for node starts when the failure detection
    /// subsystem confirms a crash").
    pub detection_ns: u64,
    /// Process/OS restart time before the log scan starts.
    pub reboot_ns: u64,
}

/// The crash/recovery cycles a run observed. The one-shot Table V
/// experiment reads `cycles[0]`; multi-crash chaos schedules accumulate
/// several (possibly for several servers).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Completed cycles, in completion order.
    pub cycles: Vec<RecoveryCycle>,
}

impl RecoveryReport {
    /// The first completed cycle (the single-crash experiments' result).
    pub fn first(&self) -> Option<&RecoveryCycle> {
        self.cycles.first()
    }
}

/// Everything a fault-injected run reports (see [`DesCluster::run_chaos`]).
pub struct ChaosOutcome {
    pub stats: RunStats,
    /// Namespace-atomicity violations from the merged final view. Only
    /// meaningful when `quiesced` — a wedged cluster legitimately holds
    /// half-committed state — so it is left empty otherwise.
    pub violations: Vec<Violation>,
    /// Violation descriptions accumulated by the injector's oracle.
    pub oracle_report: Vec<String>,
    /// Whether every server drained all pending protocol state.
    pub quiesced: bool,
    /// Client-acked operations, in ack order.
    pub acks: Vec<AckRecord>,
    /// Every operation issued (acked or not).
    pub issued: Vec<(OpId, FsOp)>,
    /// Merged final metadata view of all servers.
    pub view: GlobalView,
}

/// Per-server liveness during a run with crashes.
#[derive(Debug, Clone, Copy)]
enum SrvPhase {
    Up,
    Down {
        crashed_at: SimTime,
        valid_bytes: u64,
    },
    Recovering {
        crashed_at: SimTime,
        valid_bytes: u64,
        started: SimTime,
        scanned: u64,
    },
}

struct ProcRuntime {
    id: ProcId,
    current: Option<ClientOp>,
    /// Identity of the in-flight operation (durability-oracle input).
    current_meta: Option<(OpId, FsOp)>,
    issued_at: SimTime,
    current_cross: bool,
    next_seq: u64,
    done: bool,
}

/// The simulated cluster.
pub struct DesCluster {
    cfg: ClusterConfig,
    placement: Placement,
    servers: Vec<Box<dyn ServerEngine>>,
    disks: Vec<Disk>,
    cpus: Vec<FifoResource>,
    procs: Vec<ProcRuntime>,
    /// Shared op intake: per-process buffers over the workload stream.
    /// Behind a mutex because partitioned runs pull from one feed across
    /// threads; per-process subsequences are invariant under pull
    /// interleaving (the feed contract), so sharing keeps determinism.
    /// Single-threaded runs pay one uncontended lock per issued op.
    feed: Arc<Mutex<OpFeed>>,
    sim: Sim<Ev>,
    stats: RunStats,
    roots: Vec<cx_types::InodeNo>,
    active_procs: u32,
    sample_every_ns: u64,
    next_sample: SimTime,
    /// Hard event cap (hang protection).
    max_events: u64,
    /// Per-server liveness (all `Up` unless crashes are in play).
    phases: Vec<SrvPhase>,
    /// Servers currently Down or Recovering; fast skip of the per-event
    /// recovery-completion scan.
    in_fault: u32,
    /// The legacy volume-triggered crash (Table V experiment).
    legacy_plan: Option<CrashPlan>,
    /// Stop the event loop at the first completed recovery cycle
    /// (`run_recovery_experiment` semantics).
    stop_after_first_cycle: bool,
    /// The fault plane; `None` on uninstrumented runs. Arc+Mutex so
    /// partitioned chaos runs share one injector (the global fault
    /// authority) across worker threads.
    injector: Option<Arc<Mutex<Box<dyn FaultInjector>>>>,
    /// Crash requested by the injector during the current event; executed
    /// once the event finishes dispatching (first request wins).
    pending_crash: Option<CrashCmd>,
    /// Record per-op issue/ack logs for the durability oracle.
    record_ops: bool,
    acks: Vec<AckRecord>,
    issued: Vec<(OpId, FsOp)>,
    /// Per-server WAL/writeback counters already reported to the injector
    /// (FaultEvents are the diffs against these).
    wal_appended_seen: Vec<[u64; RecordFamily::COUNT]>,
    wal_durable_seen: Vec<[u64; RecordFamily::COUNT]>,
    writebacks_seen: Vec<u64>,
    /// Per-kind message counters, indexed by `MsgKind as usize` — the
    /// send path is per-event hot, so the ordered `stats.msgs` map is
    /// only assembled once, in `finalize`.
    msg_counts: [u64; MsgKind::COUNT],
    /// Reusable action buffer: every dispatch takes it, fills it, drains
    /// it through `do_actions`, and puts it back, so the per-event `Vec`
    /// allocation disappears. Handlers never reenter `dispatch`, so one
    /// buffer suffices.
    scratch: Vec<Action>,
    /// Observability sink. `Off` (the default) makes every emission a
    /// single-branch no-op; recording never schedules events or touches
    /// protocol state, so the golden digest is identical either way.
    obs: ObsSink,
    /// Always-on crash flight recorder: a fixed-size ring of recent
    /// message edges and lifecycle events, fed even when `obs` is `Off`,
    /// so a post-mortem can be dumped after a crash, a stuck op, or a
    /// failed oracle check. `None` (the default) costs nothing.
    flight: Option<FlightRecorder>,
    /// Partition context when this cluster instance is one worker of a
    /// partitioned run (`crate::par`): which servers/procs are local, the
    /// cross-partition mailbox, and the sync barrier. `None` — the
    /// default — is the plain single-threaded cluster, bit-identical to
    /// the pre-partitioning behavior.
    part: Option<PartCtx>,
}

impl DesCluster {
    /// Build a cluster from a materialized trace (vec-backed stream).
    pub fn new(cfg: ClusterConfig, trace: &Trace) -> Self {
        Self::new_stream(cfg, trace.to_stream())
    }

    /// Build a cluster over a streaming workload: the trace header
    /// (seeds, roots, process count) is consumed eagerly, operations are
    /// pulled on demand as processes issue them.
    pub fn new_stream(cfg: ClusterConfig, st: StreamTrace) -> Self {
        let StreamTrace {
            name: _,
            processes,
            seeds,
            roots,
            total_ops_hint,
            ops,
        } = st;
        let feed = Arc::new(Mutex::new(OpFeed::new(ops, processes, total_ops_hint)));
        Self::build(cfg, processes, &seeds, roots, feed, None)
    }

    /// Shared constructor: the single-threaded path passes `part: None`;
    /// `crate::par` builds P instances over one shared feed, each with its
    /// own [`PartCtx`]. Only nodes local to the partition are seeded and
    /// booted — remote engines exist (dense indexing stays trivial) but
    /// never receive an event, hold no namespace rows, and merge as zero.
    pub(crate) fn build(
        cfg: ClusterConfig,
        processes: u32,
        seeds: &[SeedEntry],
        roots: Vec<cx_types::InodeNo>,
        feed: Arc<Mutex<OpFeed>>,
        part: Option<PartCtx>,
    ) -> Self {
        let placement = Placement::new(cfg.servers);
        let mut servers: Vec<Box<dyn ServerEngine>> = (0..cfg.servers)
            .map(|i| cx_protocol::make_server(ServerId(i), &cfg))
            .collect();

        let local_server = |s: ServerId| match &part {
            Some(p) => p.pmap.server_part(s.0) == p.me,
            None => true,
        };
        let local_proc = |i: u32| match &part {
            Some(p) => p.pmap.proc_part(i) == p.me,
            None => true,
        };

        // Seed the initial namespace (each row seeded exactly once across
        // all partitions: rows live where their server is local).
        for seed in seeds {
            match *seed {
                SeedEntry::Dir { ino } => {
                    // directory partition rows exist on every server
                    for (i, s) in servers.iter_mut().enumerate() {
                        if local_server(ServerId(i as u32)) {
                            s.store_mut().seed_inode(ino, FileKind::Directory, 1);
                        }
                    }
                }
                SeedEntry::File { parent, name, ino } => {
                    let ds = placement.dentry_server(parent, name);
                    if local_server(ds) {
                        servers[ds.0 as usize]
                            .store_mut()
                            .seed_dentry(parent, name, ino);
                    }
                    let is = placement.inode_server(ino);
                    if local_server(is) {
                        servers[is.0 as usize]
                            .store_mut()
                            .seed_inode(ino, FileKind::Regular, 1);
                    }
                }
            }
        }

        let (starts_empty, total_hint) = {
            let f = feed.lock().expect("op feed");
            (
                (0..processes)
                    .map(|i| f.starts_empty(i))
                    .collect::<Vec<_>>(),
                f.total_hint(),
            )
        };
        let procs: Vec<ProcRuntime> = (0..processes)
            .map(|i| ProcRuntime {
                id: ProcId::new(i, 0),
                done: starts_empty[i as usize],
                current: None,
                current_meta: None,
                issued_at: SimTime::ZERO,
                current_cross: false,
                next_seq: 0,
            })
            .collect();
        let active_procs = procs
            .iter()
            .enumerate()
            .filter(|(i, p)| !p.done && local_proc(*i as u32))
            .count() as u32;

        let disks = (0..cfg.servers).map(|_| Disk::new(cfg.disk)).collect();
        let cpus = (0..cfg.servers).map(|_| FifoResource::new()).collect();
        let stats = RunStats::new(cfg.protocol, cfg.servers, processes);
        let max_events = 800 * total_hint + 10_000_000;

        let n = cfg.servers as usize;
        Self {
            cfg,
            placement,
            servers,
            disks,
            cpus,
            procs,
            feed,
            sim: Sim::new(),
            stats,
            roots,
            active_procs,
            sample_every_ns: 200_000_000, // 200 ms samples for Figure 7b
            next_sample: SimTime::ZERO,
            max_events,
            phases: vec![SrvPhase::Up; n],
            in_fault: 0,
            legacy_plan: None,
            stop_after_first_cycle: false,
            injector: None,
            pending_crash: None,
            record_ops: false,
            acks: Vec::new(),
            issued: Vec::new(),
            wal_appended_seen: vec![[0; RecordFamily::COUNT]; n],
            wal_durable_seen: vec![[0; RecordFamily::COUNT]; n],
            writebacks_seen: vec![0; n],
            msg_counts: [0; MsgKind::COUNT],
            scratch: Vec::with_capacity(16),
            obs: ObsSink::Off,
            flight: None,
            part,
        }
    }

    /// Dense indices of the servers this instance simulates (all of them
    /// when not partitioned).
    fn local_servers(&self) -> Range<usize> {
        match &self.part {
            Some(p) => p.pmap.server_range(p.me),
            None => 0..self.servers.len(),
        }
    }

    fn is_local_server(&self, s: u32) -> bool {
        match &self.part {
            Some(p) => p.pmap.server_part(s) == p.me,
            None => true,
        }
    }

    fn is_local_proc(&self, i: u32) -> bool {
        match &self.part {
            Some(p) => p.pmap.proc_part(i) == p.me,
            None => true,
        }
    }

    /// Install an observability sink: the run records op-lifecycle spans,
    /// latency histograms, and virtual-time gauges into it. Engines get a
    /// clone so they can stamp milestones only they see (Cx `Completed`).
    pub fn with_obs(mut self, sink: ObsSink) -> Self {
        for s in self.servers.iter_mut() {
            s.install_obs(sink.clone());
        }
        self.obs = sink;
        self
    }

    /// Install a flight recorder. The caller keeps a clone (it is an
    /// `Arc` ring) and decides when to dump: the run itself only feeds it.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Arm a crash: the run will kill `plan.server` once its valid-record
    /// volume reaches the target, reboot it after the detection delay, and
    /// time the recovery (Table V: "we killed the processes on a server
    /// after it has accepted a specific size of valid-records").
    pub fn with_crash(mut self, plan: CrashPlan) -> Self {
        self.legacy_plan = Some(plan);
        self
    }

    /// Install a fault injector. Message sends and protocol events route
    /// through it, and the per-op issue/ack logs the oracle needs are
    /// recorded. Use [`DesCluster::run_chaos`] afterwards.
    pub fn with_injector(mut self, injector: Box<dyn FaultInjector>) -> Self {
        self.injector = Some(Arc::new(Mutex::new(injector)));
        self.record_ops = true;
        self
    }

    /// Share an already-wrapped injector (partitioned chaos runs: every
    /// partition feeds the same global injector through its own lock
    /// handle).
    pub(crate) fn install_shared_injector(&mut self, injector: Arc<Mutex<Box<dyn FaultInjector>>>) {
        self.injector = Some(injector);
        self.record_ops = true;
    }

    /// Boot the servers and schedule the first client issues (process
    /// starts are staggered slightly to avoid artificial lockstep).
    fn boot(&mut self) {
        for i in self.local_servers() {
            let mut out = std::mem::take(&mut self.scratch);
            self.servers[i].on_start(SimTime::ZERO, &mut out);
            self.do_actions(Endpoint::Server(ServerId(i as u32)), &mut out);
            self.scratch = out;
        }
        if self.injector.is_some() {
            self.probe_all(SimTime::ZERO);
            self.fire_pending_crash();
        }
        // Staggers key off the *global* process index, so a partitioned
        // boot issues each process at the same virtual time as the
        // single-threaded one.
        for p in 0..self.procs.len() {
            if !self.procs[p].done && self.is_local_proc(p as u32) {
                self.sim
                    .schedule(p as u64 * 2 * DUR_US, 0, Ev::ProcIssue { proc: p as u32 });
            }
        }
    }

    /// Run until the armed crash has fully recovered; returns the timing
    /// report (None if the workload never produced enough valid records).
    pub fn run_recovery_experiment(mut self) -> Option<RecoveryReport> {
        assert!(
            self.legacy_plan.is_some(),
            "arm a crash with with_crash first"
        );
        self.stop_after_first_cycle = true;
        self.boot();
        self.event_loop();
        if self.stats.recovery_cycles.is_empty() {
            None
        } else {
            Some(RecoveryReport {
                cycles: self.stats.recovery_cycles.clone(),
            })
        }
    }

    /// Run the replay to completion and return the statistics.
    pub fn run(mut self) -> (RunStats, Vec<Violation>) {
        self.boot();
        self.event_loop();
        self.drain();
        self.stats.drained = self.sim.now();
        self.finalize();

        let violations =
            GlobalView::merge(self.servers.iter().map(|s| s.store())).check(&self.roots);
        (self.stats, violations)
    }

    /// Natural drain finished; force the remaining lazy work.
    fn drain(&mut self) {
        for _ in 0..16 {
            if self.local_quiesced() {
                break;
            }
            self.quiesce_round();
            self.event_loop();
        }
    }

    /// One forced-flush round over the local Up servers, plus the fault
    /// probes a round may trigger.
    fn quiesce_round(&mut self) {
        for i in self.local_servers() {
            if !matches!(self.phases[i], SrvPhase::Up) {
                continue; // a down server cannot be asked to flush
            }
            let mut out = std::mem::take(&mut self.scratch);
            let now = self.sim.now();
            self.servers[i].quiesce(now, &mut out);
            self.do_actions(Endpoint::Server(ServerId(i as u32)), &mut out);
            self.scratch = out;
        }
        if self.injector.is_some() {
            self.probe_all(self.sim.now());
            self.fire_pending_crash();
        }
    }

    /// Whether every *local* server drained all pending protocol state
    /// (equals the global check on unpartitioned runs).
    pub(crate) fn local_quiesced(&self) -> bool {
        self.in_fault == 0 && self.local_servers().all(|i| self.servers[i].is_quiesced())
    }

    /// Run a fault-injected replay to completion: like [`DesCluster::run`],
    /// but crashes can repeat, the namespace check is gated on quiescence,
    /// and the injector's oracle output is part of the result.
    pub fn run_chaos(mut self) -> ChaosOutcome {
        assert!(self.injector.is_some(), "install with_injector first");
        self.boot();
        self.event_loop();
        self.drain();
        self.stats.drained = self.sim.now();
        // Faults can wedge clients forever (a dropped message with no
        // retransmission); surface that instead of hanging.
        let in_flight: u64 = self.procs.iter().map(|p| p.current.is_some() as u64).sum();
        let stuck = self.feed.lock().expect("op feed").remaining() + in_flight;
        self.stats.ops_stuck = self.stats.ops_stuck.max(stuck);
        self.finalize();

        let quiesced = self.local_quiesced();
        let view = GlobalView::merge(self.servers.iter().map(|s| s.store()));
        let violations = if quiesced {
            view.check(&self.roots)
        } else {
            Vec::new()
        };
        let mut oracle_report = Vec::new();
        if let Some(inj) = self.injector.take() {
            let mut inj = inj.lock().expect("injector");
            let snap = ClusterSnapshot {
                stores: self.servers.iter().map(|s| s.store()).collect(),
                acks: &self.acks,
                issued: &self.issued,
            };
            let v = inj.on_run_end(self.sim.now(), quiesced, snap);
            self.stats.faults.oracle_checks += 1;
            self.stats.faults.oracle_violations += v;
            oracle_report = inj.take_report();
        }
        ChaosOutcome {
            stats: self.stats,
            violations,
            oracle_report,
            quiesced,
            acks: self.acks,
            issued: self.issued,
            view,
        }
    }

    fn event_loop(&mut self) {
        while let Some((now, _, ev)) = self.sim.pop() {
            if now >= self.next_sample {
                self.sample_timeline(now);
            }
            self.dispatch(now, ev);
            if self.injector.is_some() {
                self.probe_all(now);
                self.fire_pending_crash();
            }
            self.check_fault_progress();
            if self.stop_after_first_cycle && !self.stats.recovery_cycles.is_empty() {
                break;
            }
            if self.sim.events_processed() > self.max_events {
                // hang protection: record and bail
                let in_flight: u64 = self.procs.iter().map(|p| p.current.is_some() as u64).sum();
                self.stats.ops_stuck = self.feed.lock().expect("op feed").remaining() + in_flight;
                break;
            }
        }
        self.stats.events = self.sim.events_processed();
    }

    /// The partitioned event loop: conservative barrier windows.
    ///
    /// Each iteration (a *window*):
    /// 1. every partition votes its local next-event time; the barrier
    ///    reduces to the global minimum `gmin`. `u64::MAX` means the whole
    ///    cluster is idle (cross-partition mail is always drained before
    ///    the vote, so idle local queues imply no in-flight work) — done.
    /// 2. each partition processes its local events in
    ///    `[gmin, gmin + window)`. The window equals the minimum
    ///    cross-partition message latency, so nothing sent inside the
    ///    window can arrive before the *next* window's horizon — remote
    ///    sends are simply buffered in the mailbox.
    /// 3. a second barrier ends the posting phase; each partition then
    ///    drains its mailbox in deterministic `(at, src, seq)` order.
    ///
    /// The horizon is agreed *before* processing (not derived from local
    /// clocks) so partitions re-entering from a drain round with skewed
    /// local times still process against one global window. The hang cap
    /// turns into a collective abort: the capped partition records its
    /// local in-flight ops and flags the barrier; every partition
    /// observes the flag at the same phase and stops at the same window.
    fn event_loop_windowed(&mut self) {
        let (barrier, window) = {
            let p = self.part.as_ref().expect("windowed loop needs a partition");
            (Arc::clone(&p.barrier), p.window_ns)
        };
        loop {
            let local_next = self.sim.peek_time().map_or(u64::MAX, |t| t.0);
            let (gmin, abort) = barrier.wait_min(local_next);
            if abort || gmin == u64::MAX {
                break;
            }
            let horizon = SimTime(gmin.saturating_add(window));
            while let Some((now, _, ev)) = self.sim.pop_before(horizon) {
                if now >= self.next_sample {
                    self.sample_timeline(now);
                }
                self.dispatch(now, ev);
                if self.injector.is_some() {
                    self.probe_all(now);
                    self.fire_pending_crash();
                }
                self.check_fault_progress();
                if self.sim.events_processed() > self.max_events {
                    // Hang protection. Only local in-flight ops are
                    // recorded here; the coordinator charges the shared
                    // feed's remainder once, globally.
                    let in_flight: u64 =
                        self.procs.iter().map(|p| p.current.is_some() as u64).sum();
                    self.stats.ops_stuck = in_flight;
                    barrier.set_abort();
                    break;
                }
            }
            // Posting phase over everywhere; exchange this window's mail.
            barrier.wait_min(u64::MAX);
            self.drain_inbox();
        }
        self.stats.events = self.sim.events_processed();
    }

    /// Move this window's inbound cross-partition messages into the local
    /// kernel, in the mailbox's deterministic merge order.
    fn drain_inbox(&mut self) {
        let Some(p) = self.part.as_mut() else { return };
        let me = p.me;
        let mailbox = Arc::clone(&p.mailbox);
        let mut inbox = std::mem::take(&mut p.inbox);
        mailbox.drain(me, &mut inbox);
        for cev in inbox.drain(..) {
            // Lookahead guarantee: every arrival is at or beyond the next
            // window's horizon, so scheduling never clamps to `now`.
            debug_assert!(cev.at >= self.sim.now(), "conservative lookahead violated");
            let NetEnvelope { from, to, payload } = cev.msg;
            match to {
                Endpoint::Server(s) => self.sim.schedule_at(
                    cev.at,
                    0,
                    Ev::ServerArrive {
                        server: s.0,
                        from,
                        payload,
                    },
                ),
                Endpoint::Proc(pid) => self.sim.schedule_at(
                    cev.at,
                    0,
                    Ev::ProcDeliver {
                        proc: pid.client.0,
                        from,
                        payload,
                    },
                ),
            }
        }
        self.part.as_mut().expect("partitioned").inbox = inbox;
    }

    /// Partitioned counterpart of [`DesCluster::drain`]: rounds are
    /// collective (a partition with nothing to flush still attends every
    /// barrier), and each round's cross-partition quiesce traffic is
    /// exchanged before the windowed loop runs it.
    fn drain_partitioned(&mut self) {
        let barrier = Arc::clone(&self.part.as_ref().expect("partitioned").barrier);
        for _ in 0..16 {
            let dirty = !self.local_quiesced();
            let (g, abort) = barrier.wait_min(if dirty { 0 } else { u64::MAX });
            if abort || g == u64::MAX {
                break;
            }
            self.quiesce_round();
            // All quiesce-generated mail must be posted (and drained)
            // before any partition votes its next-event time.
            let (_, abort) = barrier.wait_min(u64::MAX);
            self.drain_inbox();
            if abort {
                break;
            }
            self.event_loop_windowed();
        }
    }

    /// Drive one partition of a partitioned run to completion. Called on
    /// a worker thread by `crate::par`; every barrier phase here lines up
    /// with the same phase on every sibling partition.
    pub(crate) fn run_partition(&mut self) {
        assert!(self.part.is_some(), "run_partition needs a PartCtx");
        self.boot();
        self.event_loop_windowed();
        self.drain_partitioned();
        self.stats.drained = self.sim.now();
        self.finalize();
    }

    /// Local client ops still in flight (coordinator-side stuck-op math).
    pub(crate) fn local_in_flight(&self) -> u64 {
        self.procs.iter().map(|p| p.current.is_some() as u64).sum()
    }

    /// The partition's final stats, read by the coordinator merge.
    pub(crate) fn stats_ref(&self) -> &RunStats {
        &self.stats
    }

    /// Stores of the servers this partition owns, in global server order.
    pub(crate) fn local_stores(&self) -> impl Iterator<Item = &cx_mdstore::MetaStore> {
        self.local_servers().map(|i| self.servers[i].store())
    }

    /// Hand the per-op issue/ack logs to the coordinator (chaos oracle).
    pub(crate) fn take_op_logs(&mut self) -> (Vec<AckRecord>, Vec<(OpId, FsOp)>) {
        (
            std::mem::take(&mut self.acks),
            std::mem::take(&mut self.issued),
        )
    }

    fn sample_timeline(&mut self, now: SimTime) {
        let range = self.local_servers();
        let (mut sum, mut max) = (0u64, 0u64);
        for i in range.clone() {
            let v = self.servers[i].valid_log_bytes();
            sum += v;
            max = max.max(v);
        }
        self.stats.peak_valid_bytes = self.stats.peak_valid_bytes.max(max);
        self.stats.timeline.push(TimelineSample {
            at_secs: now.as_secs_f64(),
            mean_bytes: sum / range.len().max(1) as u64,
            max_bytes: max,
        });
        if self.obs.enabled() {
            for i in range {
                let s = &self.servers[i];
                let sid = i as u32;
                self.obs
                    .gauge(now, sid, GaugeKind::ValidLogBytes, s.valid_log_bytes());
                let g = s.obs_gauges();
                self.obs
                    .gauge(now, sid, GaugeKind::ActiveObjects, g.active_objects);
                self.obs
                    .gauge(now, sid, GaugeKind::PendingBatchOps, g.pending_batch_ops);
                self.obs.gauge(
                    now,
                    sid,
                    GaugeKind::QueueBacklogNs,
                    self.cpus[i].backlog_ns(now),
                );
            }
        }
        self.next_sample = now + self.sample_every_ns;
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ServerArrive {
                server,
                from,
                payload,
            } => {
                if matches!(self.phases[server as usize], SrvPhase::Down { .. }) {
                    // a dead server's NIC receives nothing
                    self.stats.faults.dead_drops += 1;
                    return;
                }
                let cost = self.cfg.cpu.per_msg_ns + payload_cost(&payload, &self.cfg);
                let at = self.cpus[server as usize].reserve(now, cost);
                self.sim.schedule_at(
                    at,
                    0,
                    Ev::ServerHandle {
                        server,
                        from,
                        payload,
                    },
                );
            }
            Ev::ServerHandle {
                server,
                from,
                payload,
            } => {
                if self.injector.is_some() {
                    self.emit_fault(
                        now,
                        FaultEvent::Deliver {
                            server: ServerId(server),
                            kind: payload.kind(),
                        },
                    );
                    if let Some(cmd) = self.pending_crash {
                        if cmd.server.0 == server {
                            // crash at delivery: the message perishes with
                            // its server, unhandled
                            self.pending_crash = None;
                            self.crash_server(now, cmd);
                            return;
                        }
                    }
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.servers[server as usize].on_msg(now, from, payload, &mut out);
                self.do_actions(Endpoint::Server(ServerId(server)), &mut out);
                self.scratch = out;
            }
            Ev::DiskDone {
                server,
                tokens,
                generation,
            } => {
                if generation != self.disks[server as usize].generation() {
                    return; // completion from a crashed incarnation
                }
                // start the next batch first: the disk works in parallel
                if let Some(next) = self.disks[server as usize].complete(now) {
                    self.schedule_batch(server, next);
                }
                let mut out = std::mem::take(&mut self.scratch);
                for token in tokens {
                    self.servers[server as usize].on_disk_done(now, token, &mut out);
                }
                self.do_actions(Endpoint::Server(ServerId(server)), &mut out);
                self.scratch = out;
            }
            Ev::ServerTimer { server, token } => {
                let mut out = std::mem::take(&mut self.scratch);
                self.servers[server as usize].on_timer(now, token, &mut out);
                self.do_actions(Endpoint::Server(ServerId(server)), &mut out);
                self.scratch = out;
            }
            Ev::ProcDeliver {
                proc,
                from,
                payload,
            } => {
                let mut out = std::mem::take(&mut self.scratch);
                let decision = match self.procs[proc as usize].current.as_mut() {
                    Some(op) => op.on_msg(now, from, payload, &mut out),
                    None => ClientDecision::Pending, // stale (op finished)
                };
                let id = self.procs[proc as usize].id;
                self.do_actions(Endpoint::Proc(id), &mut out);
                self.scratch = out;
                self.note_decision(now, proc, decision);
            }
            Ev::ProcTimer { proc, token } => {
                let mut out = std::mem::take(&mut self.scratch);
                let decision = match self.procs[proc as usize].current.as_mut() {
                    Some(op) => op.on_timer(now, token, &mut out),
                    None => ClientDecision::Pending,
                };
                let id = self.procs[proc as usize].id;
                self.do_actions(Endpoint::Proc(id), &mut out);
                self.scratch = out;
                self.note_decision(now, proc, decision);
            }
            Ev::ProcIssue { proc } => self.issue_next(now, proc),
            Ev::Reboot { server } => {
                let SrvPhase::Down {
                    crashed_at,
                    valid_bytes,
                } = self.phases[server as usize]
                else {
                    return;
                };
                let mut out = std::mem::take(&mut self.scratch);
                let scanned = self.servers[server as usize].recover(now, &mut out);
                self.do_actions(Endpoint::Server(ServerId(server)), &mut out);
                self.scratch = out;
                self.phases[server as usize] = SrvPhase::Recovering {
                    crashed_at,
                    valid_bytes,
                    started: now,
                    scanned,
                };
            }
        }
    }

    /// Crash bookkeeping, checked after every event: fire the legacy
    /// volume-triggered plan, and detect recovery completions.
    fn check_fault_progress(&mut self) {
        let now = self.sim.now();
        if let Some(plan) = self.legacy_plan {
            let idx = plan.server.0 as usize;
            if self.is_local_server(plan.server.0)
                && matches!(self.phases[idx], SrvPhase::Up)
                && self.servers[idx].valid_log_bytes() >= plan.valid_bytes_target
            {
                self.legacy_plan = None;
                self.crash_server(
                    now,
                    CrashCmd {
                        server: plan.server,
                        torn_extra_bytes: 0,
                        detection_ns: plan.detection_ns,
                        reboot_ns: plan.reboot_ns,
                    },
                );
            }
        }
        if self.in_fault == 0 {
            return;
        }
        for idx in self.local_servers() {
            let SrvPhase::Recovering {
                crashed_at,
                valid_bytes,
                started,
                scanned,
            } = self.phases[idx]
            else {
                continue;
            };
            if self.servers[idx].is_recovering() {
                continue;
            }
            self.phases[idx] = SrvPhase::Up;
            self.in_fault -= 1;
            self.stats.faults.recoveries += 1;
            if let Some(fl) = &self.flight {
                fl.push(now.0, FlightEvent::Recovered { server: idx as u32 });
            }
            self.stats.recovery_cycles.push(RecoveryCycle {
                server: ServerId(idx as u32),
                crashed_at,
                valid_bytes_at_crash: valid_bytes,
                recovery_started: started,
                recovery_finished: now,
                scanned_bytes: scanned,
                resumed_commitments: self.servers[idx].proto_metrics().resumed_commitments,
            });
            self.oracle_check(now, ServerId(idx as u32));
        }
    }

    /// Kill a server now. No-op if it is already down or its engine has no
    /// crash/recovery path (fault plans only aim at crash-capable engines,
    /// but a shrunk plan may still carry a stale crash).
    fn crash_server(&mut self, now: SimTime, cmd: CrashCmd) {
        let idx = cmd.server.0 as usize;
        // A shared (partitioned) injector hands the same CrashCmd to every
        // partition; only the server's owner executes it.
        if !self.is_local_server(cmd.server.0) {
            return;
        }
        if !matches!(self.phases[idx], SrvPhase::Up) || !self.servers[idx].supports_crash() {
            return;
        }
        let valid = self.servers[idx].valid_log_bytes();
        if cmd.torn_extra_bytes > 0 {
            self.servers[idx].crash_torn(now, cmd.torn_extra_bytes);
            self.stats.faults.torn_crashes += 1;
        } else {
            self.servers[idx].crash(now);
        }
        self.stats.faults.crashes += 1;
        if let Some(fl) = &self.flight {
            fl.push(now.0, FlightEvent::Crash { server: idx as u32 });
        }
        self.disks[idx].crash();
        self.cpus[idx].reset(now);
        self.phases[idx] = SrvPhase::Down {
            crashed_at: now,
            valid_bytes: valid,
        };
        self.in_fault += 1;
        // The crash swallows whatever WAL/writeback deltas were unreported;
        // resync so they are not misattributed to the next incarnation.
        self.resync_probes(idx);
        self.sim.schedule(
            cmd.detection_ns + cmd.reboot_ns,
            0,
            Ev::Reboot {
                server: cmd.server.0,
            },
        );
    }

    fn fire_pending_crash(&mut self) {
        if let Some(cmd) = self.pending_crash.take() {
            self.crash_server(self.sim.now(), cmd);
        }
    }

    /// Feed one protocol event to the injector; a requested crash is
    /// parked until the current event finishes dispatching.
    fn emit_fault(&mut self, now: SimTime, ev: FaultEvent) {
        let Some(inj) = self.injector.as_ref() else {
            return;
        };
        let cmd = inj.lock().expect("injector").on_event(now, &ev);
        if let Some(cmd) = cmd {
            if self.pending_crash.is_none() {
                self.pending_crash = Some(cmd);
            }
        }
    }

    /// Diff every server's WAL append/durable counters and write-back
    /// count against what the injector has already seen, emitting one
    /// [`FaultEvent`] per increment. Called after each event while an
    /// injector is installed.
    fn probe_all(&mut self, now: SimTime) {
        for idx in self.local_servers() {
            let server = ServerId(idx as u32);
            if let Some(w) = self.servers[idx].wal() {
                let (ap, du) = (w.appended_counts(), w.durable_counts());
                for family in RecordFamily::ALL {
                    let i = family.index();
                    while self.wal_appended_seen[idx][i] < ap[i] {
                        self.wal_appended_seen[idx][i] += 1;
                        let nth = self.wal_appended_seen[idx][i];
                        self.emit_fault(
                            now,
                            FaultEvent::WalAppend {
                                server,
                                family,
                                nth,
                            },
                        );
                    }
                    while self.wal_durable_seen[idx][i] < du[i] {
                        self.wal_durable_seen[idx][i] += 1;
                        let nth = self.wal_durable_seen[idx][i];
                        self.emit_fault(
                            now,
                            FaultEvent::WalDurable {
                                server,
                                family,
                                nth,
                            },
                        );
                    }
                }
            }
            let wb = self.servers[idx].stats().writebacks;
            while self.writebacks_seen[idx] < wb {
                self.writebacks_seen[idx] += 1;
                let nth = self.writebacks_seen[idx];
                self.emit_fault(now, FaultEvent::Writeback { server, nth });
            }
        }
    }

    /// Fast-forward one server's probe counters without emitting events.
    fn resync_probes(&mut self, idx: usize) {
        if self.injector.is_none() {
            return;
        }
        if let Some(w) = self.servers[idx].wal() {
            self.wal_appended_seen[idx] = w.appended_counts();
            self.wal_durable_seen[idx] = w.durable_counts();
        }
        self.writebacks_seen[idx] = self.servers[idx].stats().writebacks;
    }

    /// Run the injector's oracle after a recovery completed. Skipped on
    /// partitioned runs: a partition sees only its local stores and acks,
    /// so mid-run whole-cluster assertions would be vacuously wrong — the
    /// coordinator runs one global end-of-run pass instead.
    fn oracle_check(&mut self, now: SimTime, server: ServerId) {
        if self.part.is_some() {
            return;
        }
        let Some(inj) = self.injector.clone() else {
            return;
        };
        let snap = ClusterSnapshot {
            stores: self.servers.iter().map(|s| s.store()).collect(),
            acks: &self.acks,
            issued: &self.issued,
        };
        let v = inj
            .lock()
            .expect("injector")
            .on_recovery_complete(now, server, snap);
        self.stats.faults.oracle_checks += 1;
        self.stats.faults.oracle_violations += v;
    }

    fn note_decision(&mut self, now: SimTime, proc: u32, decision: ClientDecision) {
        if let ClientDecision::Done(outcome) = decision {
            let p = &mut self.procs[proc as usize];
            p.current = None;
            let meta = p.current_meta.take();
            let latency = now.since(p.issued_at);
            self.stats.latency.record(latency);
            self.stats.latency_hist.record(latency);
            if p.current_cross {
                self.stats.cross_latency.record(latency);
                self.stats.cross_latency_hist.record(latency);
            }
            if self.obs.enabled() {
                if let Some((op, fs_op)) = meta {
                    // Only Cx leaves commitment work running behind the
                    // reply; everyone else is fully done here.
                    let awaits = p.current_cross && self.cfg.protocol == Protocol::Cx;
                    self.obs.op_replied(op, now, outcome, awaits);
                    self.obs
                        .client_latency(fs_op.class(), p.current_cross, latency);
                }
            }
            if let (Some(fl), Some((op, _))) = (&self.flight, meta) {
                fl.push(
                    now.0,
                    FlightEvent::Replied {
                        op,
                        applied: outcome == cx_types::OpOutcome::Applied,
                    },
                );
            }
            self.stats.record_outcome(outcome);
            if self.record_ops {
                if let Some((op, fs_op)) = meta {
                    self.acks.push(AckRecord {
                        op,
                        fs_op,
                        outcome,
                        at: now,
                    });
                }
            }
            self.sim
                .schedule(CLIENT_ISSUE_NS, 0, Ev::ProcIssue { proc });
        }
    }

    fn issue_next(&mut self, now: SimTime, proc: u32) {
        if self.procs[proc as usize].current.is_some() {
            return;
        }
        let next = self.feed.lock().expect("op feed").next_for(proc);
        let p = &mut self.procs[proc as usize];
        let Some(op) = next else {
            if !p.done {
                p.done = true;
                self.active_procs -= 1;
                if self.active_procs == 0 {
                    self.stats.replay = now;
                }
            }
            return;
        };
        let op_id = OpId::new(p.id, p.next_seq);
        p.next_seq += 1;
        let plan = self.placement.plan(op);
        p.current_cross = plan.is_cross_server();
        p.current_meta = Some((op_id, op));
        p.issued_at = now;
        self.obs.op_issued(op_id, op.class(), p.current_cross, now);
        let cross = p.current_cross;
        if let Some(fl) = &self.flight {
            fl.push(now.0, FlightEvent::Issued { op: op_id, cross });
        }
        self.stats.ops_total += 1;
        if p.current_cross {
            self.stats.cross_ops += 1;
        }
        if self.record_ops {
            self.issued.push((op_id, op));
        }
        let mut out = std::mem::take(&mut self.scratch);
        let client = ClientOp::start(self.cfg.protocol, op_id, plan, &self.cfg.cx, &mut out);
        p.current = Some(client);
        let id = p.id;
        self.do_actions(Endpoint::Proc(id), &mut out);
        self.scratch = out;
    }

    fn do_actions(&mut self, from: Endpoint, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, payload } => self.send(from, to, payload),
                Action::LogAppend { token, bytes } => {
                    self.submit_disk(from, DiskReq::LogAppend { bytes, token });
                }
                Action::DbSyncWrite { token, page } => {
                    self.submit_disk(from, DiskReq::DbSyncWrite { page, token });
                }
                Action::DbWriteback { token, pages } => {
                    self.submit_disk(from, DiskReq::DbWriteback { pages, token });
                }
                Action::LogRead { token, bytes } => {
                    self.submit_disk(from, DiskReq::SeqRead { bytes, token });
                }
                Action::DbRandomRead { token, pages } => {
                    self.submit_disk(from, DiskReq::RandomRead { pages, token });
                }
                Action::SetTimer { token, delay_ns } => match from {
                    Endpoint::Server(s) => {
                        self.sim
                            .schedule(delay_ns, 0, Ev::ServerTimer { server: s.0, token })
                    }
                    Endpoint::Proc(p) => self.sim.schedule(
                        delay_ns,
                        0,
                        Ev::ProcTimer {
                            proc: p.client.0,
                            token,
                        },
                    ),
                },
            }
        }
    }

    /// Stamp lifecycle milestones from the message plane: the payload kind
    /// names the Cx phase the sender just entered. Stamps record the send
    /// (a later drop fault does not unhappen the phase), and `OpSpan`
    /// stamping is first-writer-wins, so re-driven batches and
    /// retransmissions never move a milestone.
    fn obs_on_send(&self, from: Endpoint, payload: &Payload) {
        let now = self.sim.now();
        let srv = match from {
            Endpoint::Server(s) => Some(s),
            Endpoint::Proc(_) => None,
        };
        match payload {
            // Client-visible path.
            Payload::SubOpReq { op_id, .. } | Payload::OpReq { op_id, .. } => {
                self.obs.op_phase(*op_id, Phase::Dispatched, now, None);
            }
            Payload::SubOpResp { op_id, .. } | Payload::OpResp { op_id, .. } => {
                self.obs.op_phase(*op_id, Phase::Executed, now, srv);
            }
            // Commitment path: batched Cx messages carry many ops; 2PC's
            // VoteExec and CE's migration round-trip are their (pre-reply)
            // analogues, so the same milestones work for every protocol.
            Payload::Vote { ops, .. } => {
                for &op in ops {
                    self.obs.op_phase(op, Phase::VoteSent, now, srv);
                }
            }
            Payload::VoteExec { op_id, .. } | Payload::Migrate { op_id, .. } => {
                self.obs.op_phase(*op_id, Phase::VoteSent, now, srv);
            }
            Payload::CommitDecision { commits, aborts } => {
                for &op in commits.iter().chain(aborts) {
                    self.obs.op_phase(op, Phase::DecisionSent, now, srv);
                }
            }
            Payload::MigrateBack { op_id, .. } => {
                self.obs.op_phase(*op_id, Phase::DecisionSent, now, srv);
            }
            Payload::Ack { ops } => {
                for &op in ops {
                    self.obs.op_phase(op, Phase::Acked, now, srv);
                }
            }
            Payload::MigrateBackAck { op_id, .. } => {
                self.obs.op_phase(*op_id, Phase::Acked, now, srv);
            }
            _ => {}
        }
    }

    fn send(&mut self, from: Endpoint, to: Endpoint, payload: Payload) {
        if self.obs.enabled() {
            self.obs_on_send(from, &payload);
        }
        self.msg_counts[payload.kind() as usize] += 1;
        let server_to_server =
            matches!(from, Endpoint::Server(_)) && matches!(to, Endpoint::Server(_));
        if server_to_server {
            self.stats.server_msgs += 1;
        } else {
            self.stats.client_msgs += 1;
        }
        let bytes = payload.size_bytes() as u64;
        let latency =
            self.cfg.net.one_way_ns + (bytes * 1_000_000_000) / self.cfg.net.bandwidth_bps.max(1);
        let mut extra_ns = 0;
        let mut hold_ns = 0;
        if let Some(inj) = self.injector.clone() {
            let fate =
                inj.lock()
                    .expect("injector")
                    .on_send(self.sim.now(), from, to, payload.kind());
            match fate {
                MsgFate::Deliver => {}
                MsgFate::Drop => {
                    self.stats.faults.drops += 1;
                    return;
                }
                MsgFate::Delay(ns) => {
                    self.stats.faults.delays += 1;
                    extra_ns = ns;
                }
                MsgFate::Duplicate(ns) => {
                    self.stats.faults.dups += 1;
                    // the one remaining payload clone: duplication faults
                    self.deliver(from, to, payload.clone(), latency + ns, 0);
                }
                MsgFate::ExecDelay(ns) => {
                    self.stats.faults.delays += 1;
                    hold_ns = ns;
                }
            }
        }
        self.deliver(from, to, payload, latency + extra_ns, hold_ns);
    }

    /// Schedule delivery `after_ns` from now, plus an optional `hold_ns`
    /// the receiver sits on the message before handling it. The traced
    /// edge records the wire arrival (`after_ns` only), so an injected
    /// [`MsgFate::ExecDelay`] shows up in blame attribution as receiver
    /// execution time, not network transit.
    fn deliver(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        payload: Payload,
        after_ns: u64,
        hold_ns: u64,
    ) {
        // Causal message edge: the send site knows the delivery time, so
        // the whole arc is recorded in one shot. Dropped messages never
        // reach here — an edge always means a delivery (duplicates draw
        // two arcs, which is exactly what happened).
        if self.obs.enabled() || self.flight.is_some() {
            let now = self.sim.now();
            let kind: FlowKind = payload.kind().into();
            let (fnode, tnode) = (flow_node(from), flow_node(to));
            let recv_ns = (now + after_ns).0;
            if self.obs.enabled() {
                self.obs
                    .msg_edge(primary_op(&payload), kind, fnode, tnode, now.0, recv_ns);
            }
            if let Some(fl) = &self.flight {
                fl.push(
                    now.0,
                    FlightEvent::Msg {
                        kind,
                        from: fnode,
                        to: tnode,
                        recv_ns,
                    },
                );
            }
        }
        // Past the traced wire arrival, the receiver-side hold (if any)
        // just pushes the handling event later.
        let after_ns = after_ns + hold_ns;
        // Cross-partition hop: buffer in the mailbox instead of the local
        // kernel. The destination schedules it — in deterministic
        // `(at, src, seq)` merge order — at its next window boundary; the
        // arrival time can never predate that boundary because the window
        // width is the minimum message latency.
        if let Some(p) = self.part.as_mut() {
            let dst = match to {
                Endpoint::Server(s) => p.pmap.server_part(s.0),
                Endpoint::Proc(pid) => p.pmap.proc_part(pid.client.0),
            };
            if dst != p.me {
                let at = self.sim.now() + after_ns;
                let seq = p.out_seq;
                p.out_seq += 1;
                p.mailbox.post(
                    p.me,
                    dst,
                    CrossEvent {
                        at,
                        src: p.me,
                        seq,
                        msg: NetEnvelope { from, to, payload },
                    },
                );
                return;
            }
        }
        match to {
            Endpoint::Server(s) => self.sim.schedule(
                after_ns,
                0,
                Ev::ServerArrive {
                    server: s.0,
                    from,
                    payload,
                },
            ),
            Endpoint::Proc(p) => self.sim.schedule(
                after_ns,
                0,
                Ev::ProcDeliver {
                    proc: p.client.0,
                    from,
                    payload,
                },
            ),
        }
    }

    fn submit_disk(&mut self, from: Endpoint, req: DiskReq) {
        let Endpoint::Server(s) = from else {
            unreachable!("only servers own disks");
        };
        let now = self.sim.now();
        if let Some(batch) = self.disks[s.0 as usize].submit(now, req) {
            self.schedule_batch(s.0, batch);
        }
    }

    fn schedule_batch(&mut self, server: u32, batch: Batch) {
        self.sim.schedule_at(
            batch.finish,
            0,
            Ev::DiskDone {
                server,
                tokens: batch.tokens,
                generation: self.disks[server as usize].generation(),
            },
        );
    }

    fn finalize(&mut self) {
        for (kind, &n) in MsgKind::ALL.iter().zip(&self.msg_counts) {
            if n > 0 {
                self.stats.msgs.insert(*kind, n);
            }
        }
        // Structured hang diagnostics: the recorder's live-op map names the
        // exact stalled phase for every op still short of its reply. The
        // obs sink is shared across partitions, so on partitioned runs the
        // coordinator reads the (global) report once instead of every
        // partition duplicating it.
        if self.part.is_none() {
            self.stats.stuck_ops = self.obs.stuck_report();
            self.stats.blame = self.obs.blame_table();
            if let Some(fl) = &self.flight {
                let now = self.sim.now();
                for s in &self.stats.stuck_ops {
                    fl.push(
                        now.0,
                        FlightEvent::Stuck {
                            op: s.op,
                            phase: s.phase,
                        },
                    );
                }
            }
        }
        for i in self.local_servers() {
            let s = &self.servers[i];
            if !s.is_quiesced() {
                self.stats
                    .leftovers
                    .push(format!("server {i}: {}", s.debug_summary()));
            }
        }
        for i in self.local_servers() {
            let s = &self.servers[i];
            self.stats.server_stats.merge(s.stats());
            self.stats.proto.merge(&s.proto_metrics());
            self.stats.final_inodes += s.store().inode_count() as u64;
            self.stats.final_dentries += s.store().dentry_count() as u64;
        }
        for i in self.local_servers() {
            self.stats.disk.merge(self.disks[i].stats());
        }
    }

    /// Access to the engines (used by the recovery experiment harness).
    pub fn servers_mut(&mut self) -> &mut Vec<Box<dyn ServerEngine>> {
        &mut self.servers
    }
}

/// Runtime endpoint → tracer endpoint.
fn flow_node(e: Endpoint) -> FlowNode {
    match e {
        Endpoint::Server(s) => FlowNode::Server(s.0),
        Endpoint::Proc(p) => FlowNode::Client(p.client.0),
    }
}

/// The operation a message serves, for tying its edge to a span. Batched
/// commitment messages carry many ops; the first one stands in (the edge
/// still draws, and `cx-obs trace` matches any member by the args field).
pub(crate) fn primary_op(payload: &Payload) -> Option<OpId> {
    match payload {
        Payload::SubOpReq { op_id, .. }
        | Payload::SubOpResp { op_id, .. }
        | Payload::LCom { op_id }
        | Payload::AllNo { op_id }
        | Payload::Committed { op_id }
        | Payload::OpReq { op_id, .. }
        | Payload::OpResp { op_id, .. }
        | Payload::VoteExec { op_id, .. }
        | Payload::Clear { op_id, .. }
        | Payload::ClearResp { op_id }
        | Payload::Migrate { op_id, .. }
        | Payload::MigrateResp { op_id, .. }
        | Payload::MigrateBack { op_id, .. }
        | Payload::MigrateBackAck { op_id, .. } => Some(*op_id),
        Payload::CommitmentReq { pending, .. } => Some(*pending),
        Payload::Vote { ops, .. } | Payload::Ack { ops } | Payload::QueryOutcome { ops } => {
            ops.first().copied()
        }
        Payload::VoteResult { results } => results.first().map(|(op, _)| *op),
        Payload::CommitDecision { commits, aborts } => {
            commits.first().or_else(|| aborts.first()).copied()
        }
    }
}

/// CPU cost of handling one message beyond the fixed per-message cost:
/// executing a sub-op, or walking the entries of a batched commitment.
fn payload_cost(payload: &Payload, cfg: &ClusterConfig) -> u64 {
    match payload {
        Payload::SubOpReq { colocated, .. } => {
            cfg.cpu.per_subop_ns + colocated.map_or(0, |_| cfg.cpu.per_subop_ns)
        }
        Payload::OpReq { .. } | Payload::VoteExec { .. } => cfg.cpu.per_subop_ns,
        Payload::Vote { ops, order_after } => (ops.len() + order_after.len()) as u64 * PER_ENTRY_NS,
        Payload::VoteResult { results } => results.len() as u64 * PER_ENTRY_NS,
        Payload::CommitDecision { commits, aborts } => {
            (commits.len() + aborts.len()) as u64 * PER_ENTRY_NS
        }
        Payload::Ack { ops } | Payload::QueryOutcome { ops } => ops.len() as u64 * PER_ENTRY_NS,
        Payload::Migrate { objs, .. }
        | Payload::MigrateResp { objs, .. }
        | Payload::MigrateBack { objs, .. } => objs.len() as u64 * PER_ENTRY_NS,
        _ => 0,
    }
}

/// Convenience: build and run in one call.
pub fn run_trace(cfg: ClusterConfig, trace: &Trace) -> (RunStats, Vec<Violation>) {
    DesCluster::new(cfg, trace).run()
}

/// Streamed counterpart of [`run_trace`]: the workload is generated on
/// the fly as processes pull ops, so peak memory is independent of trace
/// length. Digest-identical to the materialized path for the same
/// workload parameters.
pub fn run_stream_trace(cfg: ClusterConfig, st: StreamTrace) -> (RunStats, Vec<Violation>) {
    DesCluster::new_stream(cfg, st).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_types::Protocol;
    use cx_workloads::{Metarates, MetaratesMix, TraceBuilder, TraceProfile};

    fn tiny_trace() -> Trace {
        TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.002) // ~1000 ops
            .build()
    }

    #[test]
    fn replay_completes_and_is_consistent() {
        for protocol in Protocol::ALL {
            let cfg = ClusterConfig::new(4, protocol);
            let trace = tiny_trace();
            let expected = trace.ops.len() as u64;
            let (stats, violations) = run_trace(cfg, &trace);
            assert_eq!(stats.ops_total, expected, "{protocol:?}");
            assert_eq!(stats.ops_stuck, 0, "{protocol:?}");
            assert_eq!(
                stats.ops_applied + stats.ops_failed,
                expected,
                "{protocol:?}"
            );
            assert_eq!(violations, vec![], "{protocol:?}");
            assert!(stats.replay > SimTime::ZERO);
            assert!(stats.drained >= stats.replay);
        }
    }

    #[test]
    fn des_is_deterministic() {
        let trace = tiny_trace();
        let (a, _) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
        let (b, _) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
        assert_eq!(a.replay, b.replay);
        assert_eq!(a.msgs, b.msgs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.server_stats, b.server_stats);
    }

    #[test]
    fn cx_beats_se_on_trace_replay() {
        // The headline Figure 5 effect, on a small slice.
        let trace = tiny_trace();
        let (se, _) = run_trace(ClusterConfig::new(8, Protocol::Se), &trace);
        let (cx, _) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
        assert!(
            cx.replay < se.replay,
            "Cx replay {} must beat OFS {}",
            cx.replay,
            se.replay
        );
    }

    #[test]
    fn cx_message_overhead_is_modest() {
        // Table IV: Cx sends only a few percent more messages than OFS.
        let trace = TraceBuilder::new(TraceProfile::by_name("CTH").unwrap())
            .scale(0.01)
            .build();
        let (se, _) = run_trace(ClusterConfig::new(8, Protocol::Se), &trace);
        let (cx, _) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
        let overhead = cx.total_msgs() as f64 / se.total_msgs() as f64 - 1.0;
        assert!(
            (0.0..0.10).contains(&overhead),
            "message overhead {overhead} should be small and positive"
        );
    }

    #[test]
    fn metarates_runs_on_all_protocols() {
        let trace = Metarates::new(MetaratesMix::UpdateDominated, 16)
            .seed_files(200)
            .ops_per_proc(40)
            .build();
        for protocol in [Protocol::Cx, Protocol::Se, Protocol::SeBatched] {
            let (stats, violations) = run_trace(ClusterConfig::new(4, protocol), &trace);
            assert_eq!(stats.ops_stuck, 0, "{protocol:?}");
            assert_eq!(violations, vec![], "{protocol:?}");
            assert!(stats.throughput() > 0.0);
        }
    }

    #[test]
    fn timeline_sampling_records_valid_bytes() {
        let trace = tiny_trace();
        let (stats, _) = run_trace(ClusterConfig::new(4, Protocol::Cx), &trace);
        assert!(!stats.timeline.is_empty());
        assert!(
            stats.peak_valid_bytes > 0,
            "Cx must accumulate valid records"
        );
    }

    #[test]
    fn conflicts_are_rare_but_present() {
        let trace = TraceBuilder::new(TraceProfile::by_name("deasna2").unwrap())
            .scale(0.002)
            .build();
        let (stats, violations) = run_trace(ClusterConfig::new(8, Protocol::Cx), &trace);
        assert_eq!(violations, vec![]);
        let ratio = stats.conflict_ratio();
        assert!(
            ratio < 0.2,
            "conflict ratio {ratio} should stay low (paper: <4%)"
        );
    }
}
