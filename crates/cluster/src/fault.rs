//! Fault-injection hooks for the DES runtime.
//!
//! The whole fault plane hangs off exactly two choke points — message
//! delivery ([`FaultInjector::on_send`]) and the WAL append/flush path
//! (surfaced as [`FaultEvent`]s diffed from the per-family log counters) —
//! so the protocol engines contain zero fault code and every protocol runs
//! under the same plans. The `cx-chaos` crate implements the trait; the
//! DES only calls it.

use crate::stats::AckRecord;
use cx_mdstore::MetaStore;
use cx_protocol::Endpoint;
use cx_types::{FsOp, MsgKind, OpId, ServerId, SimTime};
use cx_wal::RecordFamily;

/// What happens to one message at the send choke point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver `ns` later than the network model would.
    Delay(u64),
    /// Deliver normally and again `ns` after the first copy.
    Duplicate(u64),
    /// The message arrives on time, but the receiver sits on it for `ns`
    /// before handling — a slow *participant*, not a slow link. The
    /// traced `MsgEdge` keeps the true wire arrival, so blame attribution
    /// charges the stall to the receiver's execution segment rather than
    /// the hop's network transit (which is what [`MsgFate::Delay`] does).
    ExecDelay(u64),
}

/// A protocol-visible event the injector can key crash points on. WAL
/// events are derived by diffing each server's per-family append/durable
/// counters after every event, so "crash after the participant appends its
/// Result record" needs no hook inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A message is about to be handled by `server` (post CPU queue).
    Deliver { server: ServerId, kind: MsgKind },
    /// The `nth` (1-based, cumulative) record of `family` was appended to
    /// `server`'s log (volatile — between VOTE and COMMIT-REQ lives here).
    WalAppend {
        server: ServerId,
        family: RecordFamily,
        nth: u64,
    },
    /// The `nth` record of `family` became durable on `server`.
    WalDurable {
        server: ServerId,
        family: RecordFamily,
        nth: u64,
    },
    /// `server` issued its `nth` database write-back batch (mid write-back
    /// crash point).
    Writeback { server: ServerId, nth: u64 },
}

/// Instruction to crash a server, returned by [`FaultInjector::on_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCmd {
    pub server: ServerId,
    /// Torn log tail: up to this many bytes of whole in-flight records
    /// survive beyond the durable prefix (see `Wal::crash_torn`).
    pub torn_extra_bytes: u64,
    /// Failure-detection delay before the reboot begins.
    pub detection_ns: u64,
    /// Process/OS restart time before the log scan starts.
    pub reboot_ns: u64,
}

/// Read-only view of the cluster handed to the oracle after each recovery
/// completes and at the end of the run.
pub struct ClusterSnapshot<'a> {
    /// One store per server, in server order.
    pub stores: Vec<&'a MetaStore>,
    /// Every operation outcome delivered to a client so far.
    pub acks: &'a [AckRecord],
    /// Every operation issued so far (acked or not).
    pub issued: &'a [(OpId, FsOp)],
}

/// The DES-side fault hook. All methods default to "no fault" so a unit
/// implementation behaves exactly like an uninstrumented run.
///
/// `Send` because partitioned runs (`crate::par`) share one injector
/// across the partition worker threads behind a mutex — the injector is
/// the single global fault authority either way.
pub trait FaultInjector: Send {
    /// Called once per message send, before the network model.
    fn on_send(
        &mut self,
        _now: SimTime,
        _from: Endpoint,
        _to: Endpoint,
        _kind: MsgKind,
    ) -> MsgFate {
        MsgFate::Deliver
    }

    /// Called for every protocol-visible event; returning a [`CrashCmd`]
    /// kills the named server at the current virtual time.
    fn on_event(&mut self, _now: SimTime, _ev: &FaultEvent) -> Option<CrashCmd> {
        None
    }

    /// Oracle hook: called when a crashed server finishes its recovery.
    /// Returns the number of correctness violations detected.
    fn on_recovery_complete(
        &mut self,
        _now: SimTime,
        _server: ServerId,
        _snap: ClusterSnapshot<'_>,
    ) -> u64 {
        0
    }

    /// Final oracle pass over the drained cluster. `quiesced` tells the
    /// oracle whether whole-namespace invariants may be asserted (a
    /// non-quiesced cluster legitimately holds half-committed state).
    fn on_run_end(&mut self, _now: SimTime, _quiesced: bool, _snap: ClusterSnapshot<'_>) -> u64 {
        0
    }

    /// Drain human-readable descriptions of every violation the oracle
    /// recorded (for repro files and test assertions).
    fn take_report(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// The trivial injector: no faults, no oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_inert() {
        let mut inj = NoFaults;
        let now = SimTime::ZERO;
        let ep = Endpoint::Server(ServerId(0));
        assert_eq!(inj.on_send(now, ep, ep, MsgKind::Vote), MsgFate::Deliver);
        let ev = FaultEvent::Deliver {
            server: ServerId(0),
            kind: MsgKind::Vote,
        };
        assert_eq!(inj.on_event(now, &ev), None);
        assert_eq!(inj.take_report(), Vec::<String>::new());
    }
}
