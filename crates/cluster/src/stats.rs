//! Statistics collected from a cluster run.

use cx_obs::registry::{Counter, Gauge, MetricRegistry, Series};
use cx_obs::{BlameTable, LogHistogram, StuckOp};
use cx_protocol::{ProtoMetrics, ServerStats};
use cx_simio::DiskStats;
use cx_types::{FsOp, MsgKind, OpId, OpOutcome, Protocol, ServerId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Timing of one crash/recovery cycle. Multi-crash schedules accumulate a
/// `Vec` of these (the one-shot Table V experiment reads `cycles[0]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCycle {
    pub server: ServerId,
    pub crashed_at: SimTime,
    pub valid_bytes_at_crash: u64,
    /// When the rebooted server began its log scan.
    pub recovery_started: SimTime,
    /// When the server resumed serving requests.
    pub recovery_finished: SimTime,
    pub scanned_bytes: u64,
    /// Half-completed commitments the §III-D scan resumed, cumulative for
    /// the recovering engine at the moment this cycle finished.
    pub resumed_commitments: u64,
}

impl RecoveryCycle {
    /// The paper's recovery time: crash to serving again.
    pub fn recovery_secs(&self) -> f64 {
        (self.recovery_finished.0 - self.crashed_at.0) as f64 / 1e9
    }

    /// Protocol-only portion (log scan + resumption, excluding detection
    /// and reboot).
    pub fn protocol_secs(&self) -> f64 {
        (self.recovery_finished.0 - self.recovery_started.0) as f64 / 1e9
    }
}

/// One client-visible operation completion, recorded when fault injection
/// is active. The durability oracle replays these against the post-crash
/// namespace: every acked `Applied` mutation must survive, every acked
/// `Failed` one must have left no partial state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckRecord {
    pub op: OpId,
    pub fs_op: FsOp,
    pub outcome: OpOutcome,
    pub at: SimTime,
}

/// Per-run fault-injection counters. All zero on uninstrumented runs, and
/// deliberately excluded from [`RunStats::digest`] so chaos bookkeeping can
/// never perturb the pinned golden digests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages discarded by the injector.
    pub drops: u64,
    /// Messages delivered late.
    pub delays: u64,
    /// Messages delivered twice.
    pub dups: u64,
    /// Messages that arrived at a crashed (down) server and were lost.
    pub dead_drops: u64,
    /// Server crashes executed.
    pub crashes: u64,
    /// Crashes that kept a torn (partially flushed) log tail.
    pub torn_crashes: u64,
    /// Recoveries that ran to completion.
    pub recoveries: u64,
    /// Oracle passes executed (one per recovery plus the end-of-run pass).
    pub oracle_checks: u64,
    /// Violations those passes reported.
    pub oracle_violations: u64,
}

impl FaultStats {
    /// Fold another partition's counters in (all plain sums).
    pub fn merge(&mut self, o: &FaultStats) {
        self.drops += o.drops;
        self.delays += o.delays;
        self.dups += o.dups;
        self.dead_drops += o.dead_drops;
        self.crashes += o.crashes;
        self.torn_crashes += o.torn_crashes;
        self.recoveries += o.recoveries;
        self.oracle_checks += o.oracle_checks;
        self.oracle_violations += o.oracle_violations;
    }
}

/// Simple accumulator for latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStat {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl LatencyStat {
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another accumulator in (partition merge). Count and sum are
    /// order-independent, so the merged stat equals one accumulator that
    /// saw every sample.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One sample of the valid-record volume (Figure 7b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSample {
    pub at_secs: f64,
    /// Mean valid-record bytes per server.
    pub mean_bytes: u64,
    /// The busiest server's valid-record bytes.
    pub max_bytes: u64,
}

/// Everything a run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    pub protocol: Protocol,
    pub servers: u32,
    pub processes: u32,

    pub ops_total: u64,
    pub ops_applied: u64,
    pub ops_failed: u64,
    /// Operations that never completed (indicates a protocol hang).
    pub ops_stuck: u64,

    /// Virtual time at which the last operation response arrived — the
    /// paper's "replay time".
    pub replay: SimTime,
    /// Virtual time at which the cluster fully quiesced (all lazy
    /// commitments and write-backs done).
    pub drained: SimTime,

    /// Messages by kind (Table IV counts their total).
    pub msgs: BTreeMap<MsgKind, u64>,
    /// Server-to-server messages (commitment traffic).
    pub server_msgs: u64,
    /// Client-to-server and server-to-client messages.
    pub client_msgs: u64,

    pub disk: DiskStats,
    pub server_stats: ServerStats,

    /// Client-observed operation latency.
    pub latency: LatencyStat,
    /// Latency of cross-server mutations only.
    pub cross_latency: LatencyStat,
    /// Percentile-capable client-latency histogram (always recorded; like
    /// `faults`, excluded from [`RunStats::digest`] so the rendering of
    /// `latency` keeps its historical digest coverage).
    pub latency_hist: LogHistogram,
    /// Histogram of cross-server mutation latencies only.
    pub cross_latency_hist: LogHistogram,
    /// Cross-server operations issued.
    pub cross_ops: u64,

    /// Valid-record volume over time (Figure 7b).
    pub timeline: Vec<TimelineSample>,
    /// Peak valid-record bytes on any server.
    pub peak_valid_bytes: u64,

    /// Simulator events processed (complexity metric).
    pub events: u64,

    /// Per-server unfinished-state descriptions when the run failed to
    /// quiesce (hang diagnostics; empty on clean runs).
    pub leftovers: Vec<String>,
    /// Structured hang diagnostics from the obs plane: which op is stuck,
    /// in which lifecycle phase, on which server, since when. Populated
    /// only on `--obs` runs (the recorder's live-op map is the source);
    /// complements the free-text `leftovers`.
    pub stuck_ops: Vec<StuckOp>,
    /// Final namespace size across all servers (inode rows).
    pub final_inodes: u64,
    /// Final namespace size across all servers (directory entries).
    pub final_dentries: u64,

    /// Fault-injection counters (all zero when no injector is installed).
    pub faults: FaultStats,
    /// Completed crash/recovery cycles, in completion order.
    pub recovery_cycles: Vec<RecoveryCycle>,

    /// Protocol-internal introspection counters, merged across servers.
    /// Like `faults`, excluded from [`RunStats::digest`]: the digest
    /// renders only the named historical fields.
    pub proto: ProtoMetrics,

    /// Critical-path blame attribution over the sampled spans (`--obs`
    /// runs only). Excluded from [`RunStats::digest`] like `proto`.
    pub blame: Option<BlameTable>,
}

impl RunStats {
    pub fn new(protocol: Protocol, servers: u32, processes: u32) -> Self {
        Self {
            protocol,
            servers,
            processes,
            ops_total: 0,
            ops_applied: 0,
            ops_failed: 0,
            ops_stuck: 0,
            replay: SimTime::ZERO,
            drained: SimTime::ZERO,
            msgs: BTreeMap::new(),
            server_msgs: 0,
            client_msgs: 0,
            disk: DiskStats::default(),
            server_stats: ServerStats::default(),
            latency: LatencyStat::default(),
            cross_latency: LatencyStat::default(),
            latency_hist: LogHistogram::new(),
            cross_latency_hist: LogHistogram::new(),
            cross_ops: 0,
            timeline: Vec::new(),
            peak_valid_bytes: 0,
            events: 0,
            leftovers: Vec::new(),
            stuck_ops: Vec::new(),
            final_inodes: 0,
            final_dentries: 0,
            faults: FaultStats::default(),
            recovery_cycles: Vec::new(),
            proto: ProtoMetrics::default(),
            blame: None,
        }
    }

    /// Fold one partition's stats into this (coordinator-side merge for
    /// partitioned runs, `crate::par`). Counters add, times take the max
    /// (replay/drain are "last to finish" metrics), per-server aggregates
    /// merge through their own order-independent `merge` impls, and the
    /// timeline is re-sorted by virtual time so the merged series reads
    /// like one run's. `ops_stuck` adds only in-flight ops here; the
    /// coordinator accounts the shared feed's remainder once, globally.
    pub fn absorb_partition(&mut self, p: &RunStats) {
        self.ops_total += p.ops_total;
        self.ops_applied += p.ops_applied;
        self.ops_failed += p.ops_failed;
        self.ops_stuck += p.ops_stuck;
        self.replay = self.replay.max(p.replay);
        self.drained = self.drained.max(p.drained);
        for (kind, n) in &p.msgs {
            *self.msgs.entry(*kind).or_insert(0) += n;
        }
        self.server_msgs += p.server_msgs;
        self.client_msgs += p.client_msgs;
        self.disk.merge(&p.disk);
        self.server_stats.merge(&p.server_stats);
        self.latency.merge(&p.latency);
        self.cross_latency.merge(&p.cross_latency);
        self.latency_hist.merge(&p.latency_hist);
        self.cross_latency_hist.merge(&p.cross_latency_hist);
        self.cross_ops += p.cross_ops;
        self.timeline.extend_from_slice(&p.timeline);
        self.timeline
            .sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        self.peak_valid_bytes = self.peak_valid_bytes.max(p.peak_valid_bytes);
        self.events += p.events;
        self.leftovers.extend_from_slice(&p.leftovers);
        self.stuck_ops.extend_from_slice(&p.stuck_ops);
        self.final_inodes += p.final_inodes;
        self.final_dentries += p.final_dentries;
        self.faults.merge(&p.faults);
        self.recovery_cycles.extend_from_slice(&p.recovery_cycles);
        self.recovery_cycles
            .sort_by_key(|c| (c.recovery_finished, c.server));
        self.proto.merge(&p.proto);
        if let Some(b) = &p.blame {
            match &mut self.blame {
                Some(mine) => mine.merge(b),
                None => self.blame = Some(b.clone()),
            }
        }
    }

    /// FNV-1a over a stable rendering of the run's key statistics — the
    /// reproducibility fingerprint. Identical configuration must yield an
    /// identical digest; the golden-digest tests and the chaos replay
    /// checks pin on it. Fault counters are deliberately *not* rendered:
    /// the digest describes simulator behavior, and instrumentation
    /// bookkeeping must never perturb it.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write;
        let mut text = String::new();
        write!(
            text,
            "{:?}|{:?}|{:?}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{}|{}",
            self.replay,
            self.drained,
            self.msgs,
            self.events,
            self.ops_total,
            self.ops_applied,
            self.ops_failed,
            self.disk,
            self.server_stats,
            self.latency,
            self.cross_ops,
            self.peak_valid_bytes,
        )
        .expect("write to String");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    pub fn total_msgs(&self) -> u64 {
        self.msgs.values().sum()
    }

    pub fn record_outcome(&mut self, outcome: OpOutcome) {
        match outcome {
            OpOutcome::Applied => self.ops_applied += 1,
            OpOutcome::Failed => self.ops_failed += 1,
        }
    }

    /// Replay time in seconds (Figure 5's metric).
    pub fn replay_secs(&self) -> f64 {
        self.replay.as_secs_f64()
    }

    /// Aggregated throughput in operations/second (Figure 6's metric).
    pub fn throughput(&self) -> f64 {
        let t = self.replay.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.ops_total as f64 / t
        }
    }

    /// Fixed-quantile digest (p50/p90/p99/p99.9/max) of the client-visible
    /// latency histogram — what the figure/table binaries print next to
    /// the paper-parity mean.
    pub fn latency_summary(&self) -> cx_obs::HistSummary {
        self.latency_hist.summary()
    }

    /// Quantile digest of cross-server mutation latencies only.
    pub fn cross_latency_summary(&self) -> cx_obs::HistSummary {
        self.cross_latency_hist.summary()
    }

    /// Measured conflict ratio over *all* operations (Table II's metric:
    /// "the ratio of the concurrent operations with conflicts ... is less
    /// than 4%" — the paper's denominator is every replayed operation).
    pub fn conflict_ratio(&self) -> f64 {
        if self.ops_total == 0 {
            0.0
        } else {
            self.server_stats.conflicts as f64 / self.ops_total as f64
        }
    }

    /// Conflict ratio over cross-server operations only — the stricter
    /// denominator: only cross-server operations can conflict under Cx, so
    /// this is the fraction of commitment-bearing work that hit the
    /// blocking path.
    pub fn cross_conflict_ratio(&self) -> f64 {
        if self.cross_ops == 0 {
            0.0
        } else {
            self.server_stats.conflicts as f64 / self.cross_ops as f64
        }
    }

    /// Publish the run's totals into a metric registry — the bridge from
    /// the per-run accounting to the exposition formats (`cx-obs top`,
    /// Prometheus text). DES runs publish once at finalize; the threaded
    /// runtime publishes the same series live.
    pub fn publish(&self, reg: &MetricRegistry) {
        reg.add(Counter::OpsIssued, self.ops_total);
        reg.add(Counter::OpsApplied, self.ops_applied);
        reg.add(Counter::OpsFailed, self.ops_failed);
        reg.add(Counter::CrossOps, self.cross_ops);
        reg.add(Counter::Messages, self.total_msgs());
        reg.add(Counter::RecoveryCycles, self.recovery_cycles.len() as u64);
        reg.gauge_max(Gauge::WalPeakValidBytes, self.peak_valid_bytes);
        if let Some(last) = self.timeline.last() {
            reg.set_gauge(Gauge::WalValidBytes, last.mean_bytes);
        }
        reg.set_gauge(Gauge::OpsInFlight, self.ops_stuck);
        reg.observe_hist(Series::ClientLatencyNs, &self.latency_hist);
        reg.observe_hist(Series::CommitmentLatencyNs, &self.cross_latency_hist);
        self.proto.publish(reg);
        if let Some(b) = &self.blame {
            // Coarse segment families only; the full per-hop table lives in
            // the blame table itself (doctor), this is the `cx-obs top`
            // headline.
            use cx_obs::blame::Seg;
            let fold = |segs: &[Seg]| {
                let mut h = LogHistogram::new();
                for s in segs {
                    h.merge(&b.segs[s.index()].hist);
                }
                h
            };
            reg.observe_hist(Series::BlameIssueQueueNs, &fold(&[Seg::IssueQueue]));
            reg.observe_hist(Series::BlameDispatchNs, &fold(&[Seg::Dispatch]));
            reg.observe_hist(Series::BlameWireNs, &fold(&[Seg::ReqWire, Seg::ReplyWire]));
            reg.observe_hist(Series::BlameExecuteNs, &fold(&[Seg::Execute]));
            reg.observe_hist(Series::BlameCommitOnPathNs, &fold(&[Seg::CommitOnPath]));
            reg.observe_hist(Series::BlameCommitOffPathNs, &fold(&Seg::SUFFIX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_accumulates() {
        let mut l = LatencyStat::default();
        l.record(10);
        l.record(30);
        assert_eq!(l.count, 2);
        assert_eq!(l.mean_ns(), 20.0);
        assert_eq!(l.max_ns, 30);
        assert_eq!(LatencyStat::default().mean_ns(), 0.0);
    }

    #[test]
    fn throughput_and_ratios() {
        let mut s = RunStats::new(Protocol::Cx, 8, 256);
        s.ops_total = 1000;
        s.replay = SimTime::from_secs(2);
        assert_eq!(s.throughput(), 500.0);
        s.server_stats.conflicts = 10;
        assert!((s.conflict_ratio() - 0.01).abs() < 1e-12);
        s.record_outcome(OpOutcome::Applied);
        s.record_outcome(OpOutcome::Failed);
        assert_eq!((s.ops_applied, s.ops_failed), (1, 1));
    }

    #[test]
    fn zero_replay_throughput_is_zero() {
        let s = RunStats::new(Protocol::Se, 4, 16);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.conflict_ratio(), 0.0);
    }

    #[test]
    fn serializes_to_json() {
        let mut s = RunStats::new(Protocol::Cx, 8, 256);
        s.latency_hist.record(1_000);
        s.latency_hist.record(9_000);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"servers\":8"));
        // The percentile histograms travel with the serialized stats, so
        // quantile summaries are recoverable from any stored run.
        assert!(json.contains("\"latency_hist\""));
        assert!(json.contains("\"cross_latency_hist\""));
        let back: RunStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.latency_summary().count, 2);
        assert_eq!(back.latency_summary().max_ns, 9_000);
        assert_eq!(back.cross_latency_summary().count, 0);
    }
}
