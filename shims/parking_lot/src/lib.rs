//! Local `parking_lot` shim: `Mutex` over `std::sync::Mutex` with
//! parking_lot's non-poisoning `lock()` signature.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like parking_lot, never returns a poison error: a panicked holder
    /// simply releases the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    /// Like parking_lot: prints the value when uncontended, a
    /// `<locked>` placeholder otherwise (never blocks).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
