//! Local `serde_json` shim: text rendering/parsing for the `serde` shim's
//! `Json` tree. Output formats match serde_json: compact is `"k":v`, pretty
//! is `"k": v` with 2-space indentation.

use serde::{Deserialize, Json, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let json = parse(s).map_err(Error)?;
    T::from_json(&json).map_err(Error)
}

/// Parse `s` into the untyped [`Json`] tree, checking syntax without
/// requiring a target type (serde_json's `Value` role).
pub fn parse_value(s: &str) -> Result<Json, Error> {
    parse(s).map_err(Error)
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(x, out);
            }
            out.push(']');
        }
        Json::Object(o) => {
            out.push('{');
            for (i, (k, x)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(x, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        Json::Array(_) => out.push_str("[]"),
        Json::Object(_) => out.push_str("{}"),
        scalar => write_compact(scalar, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Matches serde_json's rendering for the common cases: integral finite
/// floats print with a trailing `.0`.
fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", e as char)),
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at b.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad number `{text}`"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
            }
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Object(vec![
            ("a".into(), Json::U64(8)),
            ("b".into(), Json::Array(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Object(vec![("x".into(), Json::F64(1.5))])),
            ("s".into(), Json::Str("hi \"there\"\n".into())),
            ("n".into(), Json::I64(-3)),
        ]);
        let mut s = String::new();
        write_compact(&v, &mut s);
        assert_eq!(parse(&s).unwrap(), v);
        let mut p = String::new();
        write_pretty(&v, 0, &mut p);
        assert_eq!(parse(&p).unwrap(), v);
    }

    #[test]
    fn compact_and_pretty_formats_match_serde_json() {
        let v = Json::Object(vec![("servers".into(), Json::U64(8))]);
        let mut s = String::new();
        write_compact(&v, &mut s);
        assert_eq!(s, "{\"servers\":8}");
        let mut p = String::new();
        write_pretty(&v, 0, &mut p);
        assert_eq!(p, "{\n  \"servers\": 8\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_compact(&Json::F64(2.0), &mut s);
        assert_eq!(s, "2.0");
    }
}
