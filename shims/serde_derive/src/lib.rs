//! Minimal `#[derive(Serialize, Deserialize)]` for the local `serde` shim.
//!
//! Parses the item's token stream by hand (no syn/quote) and emits impls of
//! the shim traits (`serde::Serialize::to_json` / `serde::Deserialize::from_json`)
//! over the shim's owned `serde::Json` tree.
//!
//! Supported shapes (everything this workspace derives):
//! - structs: named, tuple (incl. newtype), unit; lifetime-only generics
//! - enums: unit, newtype, tuple, and struct variants (externally tagged)
//!
//! `#[serde(...)]` attributes are accepted but ignored (none exist in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Raw generics text between `<` and `>` (e.g. `'a`), empty if none.
    generics: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected item name, found {t}"),
    };
    i += 1;

    let generics = parse_generics(&toks, &mut i);

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(&toks, &mut i)),
        "enum" => {
            let group = expect_group(&toks, &mut i, Delimiter::Brace, "enum body");
            Body::Enum(parse_variants(&group))
        }
        k => panic!("serde_derive: cannot derive for `{k}` items"),
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Skips `#[...]` attributes (incl. doc comments) and a `pub` / `pub(...)`
/// visibility prefix, starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// If positioned at `<`, captures the raw generics text up to the matching
/// `>` (exclusive) and advances past it. Lifetime tokens (`'` + ident) are
/// re-joined without a space.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return String::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut out = String::new();
    let mut glue_next = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                out.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return out;
                }
                out.push('>');
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                out.push_str(" '");
                glue_next = true;
                *i += 1;
                continue;
            }
            t => {
                if !glue_next {
                    out.push(' ');
                }
                out.push_str(&t.to_string());
            }
        }
        glue_next = false;
        *i += 1;
    }
    panic!("serde_derive: unclosed generics");
}

fn expect_group(toks: &[TokenTree], i: &mut usize, delim: Delimiter, what: &str) -> Vec<TokenTree> {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.stream().into_iter().collect()
        }
        t => panic!("serde_derive: expected {what}, found {t:?}"),
    }
}

fn parse_struct_fields(toks: &[TokenTree], i: &mut usize) -> Fields {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            *i += 1;
            Fields::Named(parse_named_fields(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            *i += 1;
            Fields::Tuple(count_tuple_fields(&inner))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            *i += 1;
            Fields::Unit
        }
        t => panic!("serde_derive: expected struct body, found {t:?}"),
    }
}

/// Parses `name: Type, ...` field lists; skips attributes, visibility and
/// type tokens (tracking `<`/`>` depth so commas inside generics don't split).
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected field name, found {t}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde_derive: expected `:` after field `{name}`, found {t}"),
        }
        skip_type(toks, &mut i);
        fields.push(name);
    }
    fields
}

/// Advances past one type, stopping after a depth-0 `,` (consumed) or at the
/// end of the token list.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts fields of a tuple struct/variant body (the tokens inside `(...)`).
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx == toks.len() - 1 {
                    trailing_comma = true;
                } else {
                    n += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    n
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected variant name, found {t}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

impl Item {
    /// `("<'a>", "<'a>")` — (impl generics, type generics) — or two empty
    /// strings. Bounds are stripped from the type-generics side.
    fn generic_parts(&self) -> (String, String) {
        if self.generics.is_empty() {
            return (String::new(), String::new());
        }
        let params: Vec<&str> = split_top_level(&self.generics);
        let names: Vec<String> = params
            .iter()
            .map(|p| p.split(':').next().unwrap_or(p).trim().to_string())
            .collect();
        (
            format!("<{}>", self.generics),
            format!("<{}>", names.join(", ")),
        )
    }
}

/// Splits `s` at depth-0 commas (depth tracked over `<`/`>`).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (idx, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(s[start..idx].trim());
                start = idx + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        parts.push(last);
    }
    parts
}

// ---------------------------------------------------------------------------
// Serialize emission
// ---------------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    let (ig, tg) = item.generic_parts();
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => serialize_struct_body(fields),
        Body::Enum(variants) => serialize_enum_body(name, variants),
    };
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{\n\
         \tfn to_json(&self) -> ::serde::Json {{\n{body}\t}}\n}}\n"
    )
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "\t\t::serde::Json::Object(::std::vec![{}])\n",
                entries.join(", ")
            )
        }
        Fields::Tuple(1) => "\t\t::serde::Serialize::to_json(&self.0)\n".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_json(&self.{k})"))
                .collect();
            format!(
                "\t\t::serde::Json::Array(::std::vec![{}])\n",
                elems.join(", ")
            )
        }
        Fields::Unit => "\t\t::serde::Json::Null\n".to_string(),
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "\t\t\t{name}::{vname} => \
                     ::serde::Json::Str(::std::string::String::from(\"{vname}\")),\n"
                ));
            }
            Fields::Tuple(1) => {
                arms.push_str(&format!(
                    "\t\t\t{name}::{vname}(__f0) => ::serde::Json::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_json(__f0))]),\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_json({b})"))
                    .collect();
                arms.push_str(&format!(
                    "\t\t\t{name}::{vname}({}) => ::serde::Json::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Json::Array(::std::vec![{}]))]),\n",
                    binds.join(", "),
                    elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_json({f}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "\t\t\t{name}::{vname} {{ {} }} => ::serde::Json::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Json::Object(::std::vec![{}]))]),\n",
                    fields.join(", "),
                    entries.join(", ")
                ));
            }
        }
    }
    format!("\t\tmatch self {{\n{arms}\t\t}}\n")
}

// ---------------------------------------------------------------------------
// Deserialize emission
// ---------------------------------------------------------------------------

fn emit_deserialize(item: &Item) -> String {
    let (ig, tg) = item.generic_parts();
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => deserialize_struct_body(name, fields),
        Body::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
         \tfn from_json(__v: &::serde::Json) -> \
         ::std::result::Result<Self, ::std::string::String> {{\n{body}\t}}\n}}\n"
    )
}

/// `field: <lookup in __o>` initializer for one named field. Missing fields
/// fall back to deserializing from `Null` (so `Option` defaults to `None`).
fn named_field_init(owner: &str, f: &str) -> String {
    format!(
        "{f}: match __o.iter().find(|__kv| __kv.0 == \"{f}\") {{\
         ::std::option::Option::Some(__kv) => ::serde::Deserialize::from_json(&__kv.1)?, \
         ::std::option::Option::None => \
         ::serde::Deserialize::from_json(&::serde::Json::Null)\
         .map_err(|_| ::std::string::String::from(\"missing field `{f}` in {owner}\"))?, \
         }}"
    )
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "\t\tmatch __v {{\n\
                 \t\t\t::serde::Json::Object(__o) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                 \t\t\t_ => ::std::result::Result::Err(\
                 ::std::string::String::from(\"expected object for {name}\")),\n\
                 \t\t}}\n",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => format!(
            "\t\t::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__v)?))\n"
        ),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_json(&__a[{k}])?"))
                .collect();
            format!(
                "\t\tmatch __v {{\n\
                 \t\t\t::serde::Json::Array(__a) if __a.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 \t\t\t_ => ::std::result::Result::Err(\
                 ::std::string::String::from(\"expected {n}-element array for {name}\")),\n\
                 \t\t}}\n",
                elems.join(", ")
            )
        }
        Fields::Unit => {
            format!("\t\tlet _ = __v;\n\t\t::std::result::Result::Ok({name})\n")
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .collect();

    let mut out = String::from("\t\tmatch __v {\n");

    if !unit.is_empty() {
        let arms: Vec<String> = unit
            .iter()
            .map(|v| {
                format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                    vn = v.name
                )
            })
            .collect();
        out.push_str(&format!(
            "\t\t\t::serde::Json::Str(__s) => match __s.as_str() {{ {} _ => \
             ::std::result::Result::Err(::std::format!(\
             \"unknown variant `{{}}` for {name}\", __s)), }},\n",
            arms.join(" ")
        ));
    }

    if !data.is_empty() {
        let mut arms = String::new();
        for v in &data {
            let vn = &v.name;
            match &v.fields {
                Fields::Tuple(1) => {
                    arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_json(__val)?)), "
                    ));
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_json(&__a[{k}])?"))
                        .collect();
                    arms.push_str(&format!(
                        "\"{vn}\" => match __val {{ \
                         ::serde::Json::Array(__a) if __a.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vn}({})), \
                         _ => ::std::result::Result::Err(::std::string::String::from(\
                         \"expected {n}-element array for {name}::{vn}\")), }}, ",
                        elems.join(", ")
                    ));
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| named_field_init(&format!("{name}::{vn}"), f))
                        .collect();
                    arms.push_str(&format!(
                        "\"{vn}\" => match __val {{ \
                         ::serde::Json::Object(__o) => \
                         ::std::result::Result::Ok({name}::{vn} {{ {} }}), \
                         _ => ::std::result::Result::Err(::std::string::String::from(\
                         \"expected object for {name}::{vn}\")), }}, ",
                        inits.join(", ")
                    ));
                }
                Fields::Unit => unreachable!(),
            }
        }
        out.push_str(&format!(
            "\t\t\t::serde::Json::Object(__o1) if __o1.len() == 1 => {{\n\
             \t\t\t\tlet __val = &__o1[0].1;\n\
             \t\t\t\tmatch __o1[0].0.as_str() {{ {arms} _ => \
             ::std::result::Result::Err(::std::format!(\
             \"unknown variant `{{}}` for {name}\", __o1[0].0)), }}\n\
             \t\t\t}}\n"
        ));
    }

    out.push_str(&format!(
        "\t\t\t_ => ::std::result::Result::Err(\
         ::std::string::String::from(\"invalid json for enum {name}\")),\n\t\t}}\n"
    ));
    out
}
