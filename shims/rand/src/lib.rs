//! Local `rand` 0.8 shim. `SmallRng` is SplitMix64 — streams differ from
//! upstream rand, but everything is deterministic given the seed, which is
//! the only property the simulator relies on.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a raw u64 draw onto `0..n` via widening multiply (Lemire's method
/// without the rejection step; bias is negligible for simulator-sized `n`).
fn below(raw: u64, n: u64) -> u64 {
    ((raw as u128 * n as u128) >> 64) as u64
}

fn f64_from_u64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64_from_u64(self.next_u64()) < p
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64_from_u64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64. Small, fast, passes BigCrush on its own output.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

pub mod distributions {
    use super::{f64_from_u64, RngCore};

    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            f64_from_u64(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

pub mod seq {
    use super::{below, Rng};

    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(below(rng.next_u64(), self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..5);
            assert!(y < 5);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(9);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = xs.choose(&mut r).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
