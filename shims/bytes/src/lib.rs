//! Local `bytes` shim: the `Buf`/`BufMut` subset the WAL codec uses.
//! Big-endian, panics on underflow (as the real crate does).

pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self[..4]);
        *self = &self[4..];
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self[..8]);
        *self = &self[8..];
        u64::from_be_bytes(b)
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 13);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(3);
        assert_eq!(r.get_u8(), 4);
    }
}
