//! Local `serde` shim: `Serialize`/`Deserialize` over an owned JSON tree.
//!
//! The real serde's visitor architecture is replaced by a concrete [`Json`]
//! intermediate value: `Serialize` renders into it, `Deserialize` reads from
//! it, and the `serde_json` shim handles text. Object member order is
//! preserved (insertion order), matching serde's struct-field order.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// Owned JSON value. Objects keep member order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

pub trait Serialize {
    fn to_json(&self) -> Json;
}

pub trait Deserialize: Sized {
    fn from_json(v: &Json) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|x| x.to_json()).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must serialize to a string or an integer (integers are
/// stringified, as serde_json does for integer-keyed maps).
fn key_to_string(k: &Json) -> String {
    match k {
        Json::Str(s) => s.clone(),
        Json::U64(n) => n.to_string(),
        Json::I64(n) => n.to_string(),
        other => panic!("serde shim: unsupported map key {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_json()), v.to_json()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                let n: u64 = match v {
                    Json::U64(n) => *n,
                    Json::I64(n) if *n >= 0 => *n as u64,
                    Json::F64(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    // Map keys arrive as strings.
                    Json::Str(s) => s.parse().map_err(|_| format!("bad integer `{s}`"))?,
                    other => return Err(format!("expected unsigned integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                let n: i64 = match v {
                    Json::I64(n) => *n,
                    Json::U64(n) => i64::try_from(*n).map_err(|_| "integer overflow".to_string())?,
                    Json::F64(f) if f.fract() == 0.0 => *f as i64,
                    Json::Str(s) => s.parse().map_err(|_| format!("bad integer `{s}`"))?,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::F64(f) => Ok(*f),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, String> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Array(a) => a.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Array(a) if a.len() == N => {
                let items: Vec<T> = a.iter().map(T::from_json).collect::<Result<_, _>>()?;
                items
                    .try_into()
                    .map_err(|_| "array length mismatch".to_string())
            }
            other => Err(format!("expected {N}-element array, got {other:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, String> {
                match v {
                    Json::Array(a) if a.len() == $len => {
                        Ok(($($t::from_json(&a[$n])?,)+))
                    }
                    other => Err(format!("expected {}-tuple, got {other:?}", $len)),
                }
            }
        }
    )*};
}
de_tuple! {
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Object(o) => o
                .iter()
                .map(|(k, val)| {
                    let key = K::from_json(&Json::Str(k.clone()))?;
                    Ok((key, V::from_json(val)?))
                })
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}
