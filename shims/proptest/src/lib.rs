//! Local `proptest` shim: deterministic random-input test runner with the
//! strategy combinators this workspace uses. Differences from upstream:
//! a fixed per-test deterministic seed (derived from the test name), a
//! smaller default case count, and **no shrinking** — a failure reports the
//! case index and seed instead of a minimized input.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    pub trait Strategy {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Helper for `prop_oneof!`: erases a strategy's concrete type.
    pub fn boxed_dyn<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.choices.len() as u64) as usize;
            self.choices[idx].gen_value(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// `any::<T>()` — uniform draw over the whole domain of `T`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    pub struct OptionStrategy<S> {
        pub(crate) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default ~3:1 Some:None weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// `prop::collection::vec`, `prop::option::of` — the paths the prelude
/// exposes as `prop::...`.
pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }

    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

pub mod test_runner {
    /// SplitMix64 generator owned by the runner; strategies draw from it.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` for each case with a deterministic per-case RNG. Panics on
    /// the first failing case (no shrinking).
    pub fn run<F>(test_name: &str, config: &ProptestConfig, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let base = fnv1a(test_name.as_bytes());
        for case in 0..cases {
            let seed = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
            let mut rng = TestRng::new(seed);
            if let Err(TestCaseError(msg)) = f(&mut rng) {
                panic!(
                    "proptest case {case}/{cases} failed (test `{test_name}`, seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __out
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed_dyn($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __l = &$lhs;
        let __r = &$rhs;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), __l, __r
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let __l = &$lhs;
        let __r = &$rhs;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __l = &$lhs;
        let __r = &$rhs;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($lhs), stringify!($rhs), __l
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let __l = &$lhs;
        let __r = &$rhs;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u64..17, (a, b) in (0u32..5, 0i64..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0..9).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn oneof_map_vec_option(
            v in prop::collection::vec(prop_oneof![Just(1u8), (4u8..6).prop_map(|x| x * 2)], 1..10),
            o in prop::option::of(0u32..3),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for x in &v {
                prop_assert!([1u8, 8, 10].contains(x), "unexpected element {}", x);
            }
            if let Some(o) = o {
                prop_assert!(o < 3);
            }
            prop_assert!([true, false].contains(&flag));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run, ProptestConfig, TestRng};
        let collect = |_: &str| {
            let mut out = Vec::new();
            run(
                "det",
                &ProptestConfig::with_cases(8),
                |rng: &mut TestRng| {
                    out.push((0u64..1000).gen_value(rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(collect("a"), collect("b"));
    }
}
