//! Local `crossbeam` shim: the `channel` subset the threaded cluster uses,
//! backed by `std::sync::mpsc`. Unlike mpsc, crossbeam has a single `Sender`
//! type for bounded and unbounded channels, so this wraps both in one enum.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    pub struct Sender<T>(Inner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Blocks when the channel is bounded and full, like crossbeam.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Inner::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            let tx2 = tx.clone();
            tx2.send(6).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
            assert_eq!(rx.recv().unwrap(), 6);
        }

        #[test]
        fn bounded_cross_thread() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || {
                tx.send(true).unwrap();
            });
            assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }

        #[test]
        fn recv_on_closed_channel_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }
    }
}
