#!/usr/bin/env bash
# Local CI gate — everything runs offline against the vendored shims.
#
#   ./ci.sh          # fmt check, clippy, release build, smoke, full test suite
#   ./ci.sh quick    # skip the release build (fast pre-commit loop)
#
# Clippy runs with -D warnings on the crates the perf pass touches most;
# the message-plane crates additionally deny redundant clones and the
# perf lint group, so allocation regressions on the hot path fail CI.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "clippy (hot-path crates, -D warnings)"
cargo clippy -q \
    -p cx-types -p cx-sim -p cx-wal -p cx-mdstore \
    -p cx-protocol -p cx-cluster -p cx-bench -p cx-chaos -p cx-workloads \
    -p cx-obs -p cx-net \
    --all-targets -- -D warnings

step "clippy (message plane: deny redundant_clone + perf lints)"
cargo clippy -q -p cx-cluster -p cx-workloads -p cx-net --all-targets -- \
    -D warnings -D clippy::redundant_clone -D clippy::perf

# The parallel-kernel crates ship state across partition worker threads;
# deny the lints that catch non-Send smuggling (an Rc or a non-Send type
# wrapped in Arc compiles fine until the one call site that crosses a
# thread boundary appears).
step "clippy (partition-crossing crates: deny Rc/non-Send-in-Arc)"
cargo clippy -q -p cx-sim -p cx-cluster --all-targets -- \
    -D warnings -D clippy::rc_mutex -D clippy::arc_with_non_send_sync

if [ "${1:-}" != "quick" ]; then
    step "cargo build --release"
    cargo build --release --workspace

    # Fixed-seed golden-digest smoke: the pinned home2 scenario must
    # replay to the pinned digest through both workload intakes AND
    # through the partitioned entry point at --partitions 1; a
    # --partitions 2 run must preserve every tie-insensitive total
    # (asserted inside --smoke itself).
    step "perf_baseline --smoke (golden digest + --partitions 2 cross-check)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- --smoke

    # Fixed-seed chaos smoke: both protocol envelopes must come out clean,
    # and the oracle must still catch the deliberately broken recovery.
    step "chaos smoke (fixed seeds)"
    cargo run -q --release -p cx-chaos -- --seeds 25 --out-dir target
    cargo run -q --release -p cx-chaos -- --demo-broken --seeds 5 --out-dir target

    # Observability smoke: a home2 replay with recording on must export a
    # parseable report whose per-phase accounting sums to the client
    # latency (cx-obs check), and must leave the replay digest untouched
    # (asserted inside --obs itself).
    step "obs smoke (home2 --obs, phase accounting)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --obs --scale 0.005 --obs-out target/obs_home2 > /dev/null
    cargo run -q --release -p cx-obs -- check target/obs_home2.report.json

    # Doctor smoke (DESIGN.md §11): the blame engine must decompose the
    # home2 report with exact per-op segment sums (cx-obs doctor re-derives
    # every op's blame and fails loudly on a broken sum), and a deliberately
    # injected 5 ms participant stall must be convicted — prime suspect
    # "execute", largest hop shift on the slowed server (asserted inside
    # --doctor-demo itself, then re-checked through the CLI diff).
    step "doctor smoke (blame segment sums + slow-participant conviction)"
    cargo run -q --release -p cx-obs -- doctor target/obs_home2.report.json > /dev/null
    cargo run -q --release -p cx-chaos -- --doctor-demo --out-dir target
    cargo run -q --release -p cx-obs -- doctor target/doctor_slow.report.json \
        --against target/doctor_base.report.json | grep -q '^prime suspect: execute$'

    # Introspection-plane smoke: replay the repro the broken-recovery demo
    # just wrote, with lifecycle recording on and the always-on flight
    # recorder. The replay must reproduce, the obs report must pass the
    # phase-accounting check, and — since the repro carries failures — the
    # flight recorder must dump a non-empty post-mortem pair.
    step "chaos replay obs + flight-recorder post-mortem"
    repro=$(ls target/chaos-repro-cx-*.json | head -1)
    cargo run -q --release -p cx-chaos -- --replay "$repro" \
        --obs-out target/chaos_replay.trace.json --flight-out target/chaos_pm
    cargo run -q --release -p cx-obs -- check target/chaos_replay.trace.json.report.json
    test -s target/chaos_pm.flight.jsonl
    test -s target/chaos_pm.flight.trace.json

    # Wire-plane smoke (DESIGN.md §9): a home2 prefix on the real-socket
    # runtime must stay clean, match the threaded runtime's
    # tie-insensitive totals, and survive the drop-every-connection
    # reconnect drill losslessly (asserted inside --net-smoke itself).
    step "net smoke (loopback TCP + reconnect drill)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- --net-smoke

    # Multi-process smoke: one OS process per server (cx_net_server), the
    # coordinator connecting out over real TCP, with the live registry
    # publishing cross-process — the .prom file must exist and carry the
    # ops counter (its value is asserted against RunStats in-binary) —
    # and wall-clock tracing on: every process stamps phases on its own
    # clock, shards ship back in StopResp, and the coordinator stitches
    # them with probe-measured offsets (≥99% span completeness asserted
    # in-binary). The stitched report must pass cx-obs check, the net
    # table must render, and cx-obs top must merge the coordinator's
    # snapshot with the per-server ones.
    step "net multi-process smoke (cx_net_server x4 + live metrics + stitched trace)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --multiproc --scale 0.0005 --metrics-out target/cx_net_metrics \
        --obs-out target/cx_net_obs
    grep -q '^cx_ops_issued_total ' target/cx_net_metrics.prom
    cargo run -q --release -p cx-obs -- check target/cx_net_obs.report.json
    cargo run -q --release -p cx-obs -- net target/cx_net_obs.net.json > /dev/null
    cargo run -q --release -p cx-obs -- top target/cx_net_metrics.json \
        target/cx_net_metrics_srv*.json > /dev/null

    # Live-exposition smoke: a threaded home2 run must leave fresh .prom /
    # .json snapshots behind (the cx-obs top input), and the registry's
    # ops counter must match RunStats (asserted inside --live itself).
    step "live metrics (--live, threaded runtime)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --live --scale 0.005 --metrics-out target/cx_metrics > /dev/null
    grep -q '^cx_ops_issued_total ' target/cx_metrics.prom
    cargo run -q --release -p cx-obs -- top target/cx_metrics.json > /dev/null

    # The observability PR's throughput gate: uninstrumented home2 replay
    # must hold the BENCH_PR3.json rate (the enum sink compiles to a no-op
    # when Off). The floor is 0.70 rather than 1.0 because the recorded
    # baseline came from an idle machine: interleaved old/new binaries on
    # a loaded single-core box measure within a few percent of each other
    # while absolute rates swing ±20%; an accidental always-on recorder
    # costs far more than 30%.
    step "BENCH_PR4.json (no throughput regression vs BENCH_PR3.json)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr4 --iters 5 --filter home2_replay_8s \
        --out BENCH_PR4.json --against BENCH_PR3.json --tolerance 0.70

    # The introspection-plane gate: the metric registry, flight-recorder
    # hooks, and message-edge branches all sit behind cheap None/Off
    # checks on the DES hot path, so the uninstrumented replay rate must
    # hold the PR4 baseline (same 0.70 floor, same rationale as above).
    step "BENCH_PR5.json (no throughput regression vs BENCH_PR4.json)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr5 --iters 5 --filter home2_replay_8s \
        --out BENCH_PR5.json --against BENCH_PR4.json --tolerance 0.70

    # The parallel-kernel gate: the single-threaded replay rate must hold
    # the PR5 baseline (the partitioned path is opt-in; --partitions 1
    # stays bit-identical, so the only way this regresses is hot-path
    # overhead leaking into the sequential kernel). The same invocation
    # also measures home2 under --partitions 2, so the p2/p1 ratio — and
    # the hardware-thread count it was measured on — lands in
    # BENCH_PR6.json alongside the gate.
    step "BENCH_PR6.json (no regression vs BENCH_PR5.json; --partitions 2)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr6 --iters 5 --filter home2_replay_8s --partitions 2 \
        --out BENCH_PR6.json --against BENCH_PR5.json --tolerance 0.70

    # The wire-plane gate: the DES replay rate must hold the PR6 baseline
    # (cx-net is a separate runtime; the only way it regresses the DES is
    # hot-path overhead leaking into shared crates). The same invocation
    # records the loopback + multi-process TCP entries — single-box
    # wall-clock numbers, see the caveat printed with them.
    step "BENCH_PR7.json (no regression vs BENCH_PR6.json; --net tcp)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr7 --iters 5 --filter home2 --net tcp \
        --out BENCH_PR7.json --against BENCH_PR6.json --tolerance 0.70

    # The wire-throughput gate: scoped corking, client shepherds, and the
    # single-shepherd direct inbound path must hold their speedup. The
    # pinned floor is ~2/3 of the recorded BENCH_PR8.json loopback rate
    # (45k ops/s on the 1-hardware-thread reference box, 2.6x the PR7
    # wire plane) so machine noise doesn't flake the gate while a return
    # to the pre-coalescing ~17k ops/s rate fails it loudly. The same
    # invocation re-checks the DES replay rate against the PR7 baseline.
    step "BENCH_PR8.json (pinned wire floor + no regression vs BENCH_PR7.json)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr8 --iters 5 --filter home2 --net tcp \
        --out BENCH_PR8.json --against BENCH_PR7.json --tolerance 0.70 \
        --net-floor 30000

    # The telemetry-overhead gate: the loopback TCP entry re-runs with the
    # full wall-clock tracing plane on (recording sink on every engine +
    # flush-span capture in the wire queues) and must hold 95% of the same
    # 30k ops/s floor — the tracing plane has to be cheap enough to leave
    # on in production. The uninstrumented entry still holds the full
    # floor, and the DES rate still holds the PR8 baseline.
    step "BENCH_PR9.json (span-on within 5% of the wire floor)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr9 --iters 5 --filter home2 --net tcp \
        --out BENCH_PR9.json --against BENCH_PR8.json --tolerance 0.70 \
        --net-floor 30000

    # The blame-plane gate: doctor attribution is pure post-processing over
    # artifacts the PR9 plane already records — the DES hot path gains only
    # a fault-match arm that is dead on uninstrumented runs — so the DES
    # replay rate must hold the PR9 baseline (1.00x expected; the 0.70
    # floor absorbs machine noise, same rationale as PR4) and the span-on
    # loopback entry must stay within 95% of the same 30k ops/s wire floor.
    step "BENCH_PR10.json (blame plane is post-processing; rates hold PR9)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr10 --iters 5 --filter home2 --net tcp \
        --out BENCH_PR10.json --against BENCH_PR9.json --tolerance 0.70 \
        --net-floor 30000
fi

step "cargo test (workspace)"
cargo test --workspace -q

step "ci.sh OK"
