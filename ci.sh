#!/usr/bin/env bash
# Local CI gate — everything runs offline against the vendored shims.
#
#   ./ci.sh          # fmt check, clippy, release build, smoke, full test suite
#   ./ci.sh quick    # skip the release build (fast pre-commit loop)
#
# Clippy runs with -D warnings on the crates the perf pass touches most;
# the message-plane crates additionally deny redundant clones and the
# perf lint group, so allocation regressions on the hot path fail CI.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "clippy (hot-path crates, -D warnings)"
cargo clippy -q \
    -p cx-types -p cx-sim -p cx-wal -p cx-mdstore \
    -p cx-protocol -p cx-cluster -p cx-bench -p cx-chaos -p cx-workloads \
    -p cx-obs \
    --all-targets -- -D warnings

step "clippy (message plane: deny redundant_clone + perf lints)"
cargo clippy -q -p cx-cluster -p cx-workloads --all-targets -- \
    -D warnings -D clippy::redundant_clone -D clippy::perf

if [ "${1:-}" != "quick" ]; then
    step "cargo build --release"
    cargo build --release --workspace

    # Fixed-seed golden-digest smoke: the pinned home2 scenario must
    # replay to the pinned digest through both workload intakes.
    step "perf_baseline --smoke (golden digest, both intakes)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- --smoke

    # Fixed-seed chaos smoke: both protocol envelopes must come out clean,
    # and the oracle must still catch the deliberately broken recovery.
    step "chaos smoke (fixed seeds)"
    cargo run -q --release -p cx-chaos -- --seeds 25 --out-dir target
    cargo run -q --release -p cx-chaos -- --demo-broken --seeds 5 --out-dir target

    # Observability smoke: a home2 replay with recording on must export a
    # parseable report whose per-phase accounting sums to the client
    # latency (cx-obs check), and must leave the replay digest untouched
    # (asserted inside --obs itself).
    step "obs smoke (home2 --obs, phase accounting)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --obs --scale 0.005 --obs-out target/obs_home2 > /dev/null
    cargo run -q --release -p cx-obs -- check target/obs_home2.report.json

    # The observability PR's throughput gate: uninstrumented home2 replay
    # must hold the BENCH_PR3.json rate (the enum sink compiles to a no-op
    # when Off). The floor is 0.70 rather than 1.0 because the recorded
    # baseline came from an idle machine: interleaved old/new binaries on
    # a loaded single-core box measure within a few percent of each other
    # while absolute rates swing ±20%; an accidental always-on recorder
    # costs far more than 30%.
    step "BENCH_PR4.json (no throughput regression vs BENCH_PR3.json)"
    cargo run -q --release -p cx-bench --bin perf_baseline -- \
        --label pr4 --iters 5 --filter home2_replay_8s \
        --out BENCH_PR4.json --against BENCH_PR3.json --tolerance 0.70
fi

step "cargo test (workspace)"
cargo test --workspace -q

step "ci.sh OK"
