//! End-to-end assertions of the paper's headline claims, at reduced scale.
//!
//! These run the full stack (workload generator → placement → protocol
//! engines → DES cluster) and check the *shape* of every major result:
//! who wins, in which order, and that consistency always holds.

use cx_core::{Experiment, MetaratesMix, Protocol, Workload};

fn replay_secs(name: &str, scale: f64, servers: u32, protocol: Protocol) -> f64 {
    let r = Experiment::new(Workload::trace(name).scale(scale))
        .servers(servers)
        .protocol(protocol)
        .run();
    assert!(r.is_consistent(), "{name}/{protocol:?} diverged");
    assert_eq!(r.stats.ops_stuck, 0, "{name}/{protocol:?} hung");
    r.stats.replay_secs()
}

/// Figure 5's ordering: OFS-Cx < OFS-batched < OFS on trace replays.
#[test]
fn figure5_ordering_holds_on_every_trace() {
    for name in ["CTH", "s3d", "home2"] {
        let se = replay_secs(name, 0.004, 8, Protocol::Se);
        let batched = replay_secs(name, 0.004, 8, Protocol::SeBatched);
        let cx = replay_secs(name, 0.004, 8, Protocol::Cx);
        assert!(
            cx < batched && batched < se,
            "{name}: expected Cx < batched < OFS, got {cx:.3} / {batched:.3} / {se:.3}"
        );
    }
}

/// "OFS-Cx can significantly improve the performance of cross-server file
/// operations by more than 38%" — we assert a ≥25% improvement at reduced
/// scale (the full-scale benchmark binaries reproduce the full figure).
#[test]
fn cx_improvement_is_substantial() {
    let se = replay_secs("CTH", 0.006, 8, Protocol::Se);
    let cx = replay_secs("CTH", 0.006, 8, Protocol::Cx);
    let improvement = 1.0 - cx / se;
    assert!(
        improvement > 0.25,
        "Cx improvement {improvement:.2} should be substantial"
    );
}

/// Table IV: Cx's message overhead over OFS stays in the low percent
/// range, thanks to batched commitment messages.
#[test]
fn table4_message_overhead_is_low() {
    let trace = Workload::trace("CTH").scale(0.008);
    let se = Experiment::new(trace.clone())
        .servers(8)
        .protocol(Protocol::Se)
        .run();
    let cx = Experiment::new(trace)
        .servers(8)
        .protocol(Protocol::Cx)
        .run();
    let overhead = cx.stats.total_msgs() as f64 / se.stats.total_msgs() as f64 - 1.0;
    assert!(
        (0.0..0.08).contains(&overhead),
        "message overhead {overhead:.3} out of range (paper: < 4%)"
    );
}

/// Figure 6: aggregated Metarates throughput grows with the cluster and
/// Cx leads both baselines, more so when update-dominated.
#[test]
fn figure6_scaling_and_ordering() {
    let run = |mix, servers, protocol| {
        let r = Experiment::new(Workload::Metarates {
            mix,
            ops_per_proc: 30,
            files_per_server: 400,
        })
        .servers(servers)
        .protocol(protocol)
        .run();
        assert!(r.is_consistent());
        r.stats.throughput()
    };

    for mix in [MetaratesMix::ReadDominated, MetaratesMix::UpdateDominated] {
        let cx4 = run(mix, 4, Protocol::Cx);
        let cx8 = run(mix, 8, Protocol::Cx);
        assert!(
            cx8 > cx4 * 1.3,
            "{mix:?}: Cx must scale with servers ({cx4:.0} → {cx8:.0})"
        );
        let se8 = run(mix, 8, Protocol::Se);
        assert!(cx8 > se8 * 1.25, "{mix:?}: Cx must lead OFS at 8 servers");
    }

    // The update-dominated gain exceeds the read-dominated gain (82% vs
    // 40% in the paper).
    let gain = |mix| run(mix, 8, Protocol::Cx) / run(mix, 8, Protocol::Se);
    assert!(
        gain(MetaratesMix::UpdateDominated) > gain(MetaratesMix::ReadDominated),
        "update-heavy workloads benefit more from Cx"
    );
}

/// Table II: the measured conflict ratios stay low (< 4%) and the NFS
/// traces conflict more than the checkpointing traces.
#[test]
fn table2_conflict_ratios_are_low_and_ordered() {
    let ratio = |name: &str| {
        let r = Experiment::new(Workload::trace(name).scale(0.01))
            .servers(8)
            .protocol(Protocol::Cx)
            .run();
        assert!(r.is_consistent(), "{name}");
        r.stats.conflict_ratio()
    };
    let cth = ratio("CTH");
    let deasna = ratio("deasna2");
    assert!(cth < 0.04, "CTH conflict ratio {cth} must stay below 4%");
    assert!(deasna < 0.08, "deasna2 conflict ratio {deasna}");
    assert!(
        deasna > cth,
        "research NFS trace conflicts more than checkpointing ({deasna} vs {cth})"
    );
}

/// Figure 8: injected conflicts erode Cx's advantage; at high ratios the
/// protocols converge (the paper's crossover sits near 20%).
#[test]
fn figure8_conflicts_erode_the_advantage() {
    let cx_time = |inject| {
        let r = Experiment::new(
            Workload::trace("home2")
                .scale(0.004)
                .inject_conflicts(inject),
        )
        .servers(8)
        .protocol(Protocol::Cx)
        .run();
        assert!(r.is_consistent());
        (
            r.stats.replay_secs(),
            r.stats.server_stats.immediate_commitments,
        )
    };
    let (t0, imm0) = cx_time(0.0);
    let (t_hi, imm_hi) = cx_time(0.10);
    assert!(
        imm_hi as f64 > imm0 as f64 * 1.5,
        "injection must multiply immediate commitments ({imm0} → {imm_hi})"
    );
    assert!(
        t_hi > t0,
        "immediate commitments must cost replay time ({t0:.3} → {t_hi:.3})"
    );
}

/// All five protocols (including the 2PC and CE baselines of §II-B)
/// agree on the final namespace for the same workload.
#[test]
fn all_protocols_agree_end_to_end() {
    let workload = Workload::trace("alegra").scale(0.002);
    let reference = Experiment::new(workload.clone())
        .servers(4)
        .protocol(Protocol::Cx)
        .run();
    for protocol in [
        Protocol::Se,
        Protocol::SeBatched,
        Protocol::TwoPc,
        Protocol::Ce,
    ] {
        let r = Experiment::new(workload.clone())
            .servers(4)
            .protocol(protocol)
            .run();
        assert!(r.is_consistent(), "{protocol:?}");
        // Mutations are per-process-private in the generated traces, so
        // the final namespace is protocol-independent; read outcomes can
        // differ by a handful of racy shared-file accesses whose timing
        // legitimately depends on the protocol.
        assert_eq!(
            r.stats.final_inodes, reference.stats.final_inodes,
            "{protocol:?} final inode count differs from Cx"
        );
        assert_eq!(
            r.stats.final_dentries, reference.stats.final_dentries,
            "{protocol:?} final dentry count differs from Cx"
        );
        let diff = (r.stats.ops_applied as i64 - reference.stats.ops_applied as i64).abs();
        assert!(
            diff <= 8,
            "{protocol:?}: applied-op count drifted by {diff} (racy reads only)"
        );
    }
}

/// 2PC and CE are slower than Cx (the motivation of §II-B: serial
/// executions and costly immediate commitments).
#[test]
fn legacy_protocols_are_slower_than_cx() {
    let workload = Workload::trace("s3d").scale(0.003);
    let cx = Experiment::new(workload.clone())
        .servers(8)
        .protocol(Protocol::Cx)
        .run();
    for protocol in [Protocol::TwoPc, Protocol::Ce] {
        let r = Experiment::new(workload.clone())
            .servers(8)
            .protocol(protocol)
            .run();
        assert!(r.is_consistent());
        assert!(
            r.stats.replay_secs() > cx.stats.replay_secs(),
            "{protocol:?} ({:.3}s) must be slower than Cx ({:.3}s)",
            r.stats.replay_secs(),
            cx.stats.replay_secs()
        );
    }
}
