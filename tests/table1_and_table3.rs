//! Explicit pins of Table I (the sub-operation split) and Table III (the
//! message vocabulary), as referenced by DESIGN.md's experiment index.

use cx_core::Placement;
use cx_types::ids::ProcId;
use cx_types::{FsOp, InodeNo, MsgKind, Name, OpId, Payload, Role, SubOp, Verdict};

const PARENT: InodeNo = InodeNo(1);
const NAME: Name = Name(77);
const INO: InodeNo = InodeNo(42);

fn halves(op: FsOp) -> (SubOp, SubOp) {
    let plan = Placement::new(16).plan(op);
    let second = plan
        .participant
        .map(|(_, s)| s)
        .or(plan.colocated)
        .expect("Table I ops have two halves");
    (plan.coord_subop, second)
}

/// Table I, row by row.
#[test]
fn table1_sub_operation_split() {
    // create: insert entry + update parent | add inode, flag regular
    let (c, p) = halves(FsOp::Create {
        parent: PARENT,
        name: NAME,
        ino: INO,
    });
    assert!(matches!(
        c,
        SubOp::InsertEntry {
            kind: cx_types::FileKind::Regular,
            ..
        }
    ));
    assert!(matches!(
        p,
        SubOp::CreateInode {
            kind: cx_types::FileKind::Regular,
            ..
        }
    ));

    // remove: remove entry + update parent | free inode if nlink reaches 0
    let (c, p) = halves(FsOp::Remove {
        parent: PARENT,
        name: NAME,
        ino: INO,
    });
    assert!(matches!(c, SubOp::RemoveEntry { .. }));
    assert!(matches!(p, SubOp::ReleaseInode { .. }));

    // mkdir: insert entry + update parent | add inode, flag dir, allocate entry space
    let (c, p) = halves(FsOp::Mkdir {
        parent: PARENT,
        name: NAME,
        ino: INO,
    });
    assert!(matches!(
        c,
        SubOp::InsertEntry {
            kind: cx_types::FileKind::Directory,
            ..
        }
    ));
    assert!(matches!(
        p,
        SubOp::CreateInode {
            kind: cx_types::FileKind::Directory,
            ..
        }
    ));

    // rmdir: remove entry + update parent | free inode if nlink reaches 0
    let (c, p) = halves(FsOp::Rmdir {
        parent: PARENT,
        name: NAME,
        ino: INO,
    });
    assert!(matches!(c, SubOp::RemoveEntry { .. }));
    assert!(matches!(p, SubOp::ReleaseInode { .. }));

    // link: insert entry + update parent | increase nlink
    let (c, p) = halves(FsOp::Link {
        parent: PARENT,
        name: NAME,
        target: INO,
    });
    assert!(matches!(c, SubOp::InsertEntry { .. }));
    assert!(matches!(p, SubOp::IncNlink { .. }));

    // unlink: remove entry + update parent | decrease nlink
    let (c, p) = halves(FsOp::Unlink {
        parent: PARENT,
        name: NAME,
        target: INO,
    });
    assert!(matches!(c, SubOp::RemoveEntry { .. }));
    assert!(matches!(p, SubOp::DecNlink { .. }));
}

/// Table III: the Cx message vocabulary with its directions.
#[test]
fn table3_message_vocabulary() {
    let op = OpId::new(ProcId::new(0, 0), 1);

    // VOTE: coordinator → participant, queries the sub-ops' results
    assert_eq!(
        Payload::Vote {
            ops: vec![op],
            order_after: vec![]
        }
        .kind(),
        MsgKind::Vote
    );
    // YES/NO: execution results (sub-op responses and vote results)
    assert_eq!(
        Payload::SubOpResp {
            op_id: op,
            verdict: Verdict::Yes,
            hint: cx_types::Hint::null()
        }
        .kind(),
        MsgKind::SubOpResp
    );
    assert_eq!(
        Payload::VoteResult {
            results: vec![(op, Verdict::No)]
        }
        .kind(),
        MsgKind::VoteResult
    );
    // COMMIT-REQ / ABORT-REQ: asks to commit/abort the executions
    assert_eq!(
        Payload::CommitDecision {
            commits: vec![op],
            aborts: vec![]
        }
        .kind(),
        MsgKind::CommitReq
    );
    assert_eq!(
        Payload::CommitDecision {
            commits: vec![],
            aborts: vec![op]
        }
        .kind(),
        MsgKind::AbortReq
    );
    // ACK: participant → coordinator, completes an operation
    assert_eq!(Payload::Ack { ops: vec![op] }.kind(), MsgKind::Ack);
    // L-COM: process → coordinator, launch a commitment
    assert_eq!(Payload::LCom { op_id: op }.kind(), MsgKind::LCom);
    // ALL-NO: coordinator → process, all executions aborted
    assert_eq!(Payload::AllNo { op_id: op }.kind(), MsgKind::AllNo);
}

/// The operation id is exactly the paper's triple: client id, process id,
/// operation sequence number (§III-A).
#[test]
fn operation_id_components() {
    let id = OpId::new(ProcId::new(3, 5), 99);
    assert_eq!(id.proc.client.0, 3);
    assert_eq!(id.proc.process.0, 5);
    assert_eq!(id.seq, 99);
    // the coalescence of client id and process id identifies the process
    assert_eq!(ProcId::new(3, 5), id.proc);

    // the participant sub-op of a Table I op carries role Participant in
    // its assignment
    let plan = Placement::new(16).plan(FsOp::Create {
        parent: PARENT,
        name: NAME,
        ino: INO,
    });
    for (_, _, role) in plan.assignments().into_iter().skip(1) {
        assert_eq!(role, Role::Participant);
    }
}
