//! Cross-crate checks of the workload analysis API and the stability of
//! the generated traces' statistical properties across scales.

use cx_core::{Experiment, MetaratesMix, Protocol, TraceBuilder, TraceProfile, Workload};
use cx_workloads::TraceSummary;

/// The cross-server share the paper states (35 % CTH / 48 % s3d) is a
/// property of the mix and placement, so it must be stable across trace
/// scales and seeds.
#[test]
fn cross_server_share_is_scale_invariant() {
    let profile = TraceProfile::by_name("s3d").expect("exists");
    let mut shares = Vec::new();
    for (scale, seed) in [(0.002, 1u64), (0.01, 2), (0.02, 3)] {
        let trace = TraceBuilder::new(profile).scale(scale).seed(seed).build();
        shares.push(TraceSummary::analyze(&trace, 8).cross_server_share);
    }
    for w in shares.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 0.03,
            "cross-server share must be stable across scales: {shares:?}"
        );
    }
    assert!((0.43..=0.53).contains(&shares[2]), "{shares:?}");
}

/// The Workload::metarates convenience constructor produces the same
/// closed-loop shape as the explicit variant.
#[test]
fn metarates_convenience_constructor() {
    let w = Workload::metarates(MetaratesMix::ReadDominated);
    let cfg = cx_core::ClusterConfig::new(2, Protocol::Cx);
    let trace = w.build(&cfg);
    assert_eq!(trace.processes, cfg.total_processes());
    let summary = TraceSummary::analyze(&trace, 2);
    assert!(
        (0.15..=0.25).contains(&summary.mutation_share),
        "read-dominated means ~20% updates, got {}",
        summary.mutation_share
    );
}

/// A custom (pre-built) workload replays exactly as given.
#[test]
fn custom_workloads_replay_verbatim() {
    let profile = TraceProfile::by_name("alegra").expect("exists");
    let trace = TraceBuilder::new(profile).scale(0.001).seed(9).build();
    let expected = trace.ops.len() as u64;
    let r = Experiment::new(Workload::Custom(trace))
        .servers(4)
        .protocol(Protocol::Cx)
        .run();
    assert!(r.is_consistent());
    assert_eq!(r.stats.ops_total, expected);
}

/// Profile tweaks flow end to end: zeroing the sharing probability
/// eliminates conflicts entirely.
#[test]
fn conflict_free_tweak_eliminates_conflicts() {
    let profile = TraceProfile::by_name("deasna2").expect("exists");
    let trace = TraceBuilder::new(profile)
        .scale(0.002)
        .tweak(|p| p.shared_access_prob = 0.0)
        .build();
    let r = Experiment::new(Workload::Custom(trace))
        .servers(8)
        .protocol(Protocol::Cx)
        .run();
    assert!(r.is_consistent());
    assert_eq!(
        r.stats.server_stats.conflicts, 0,
        "no sharing, no conflicts"
    );
}
