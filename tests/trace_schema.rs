//! Schema validation for the Chrome-trace-event exporters.
//!
//! Perfetto is permissive, so a malformed field silently drops events
//! instead of failing loudly; these tests parse the exported JSON with
//! the vendored shim and assert the trace-event contract directly:
//! every event carries `ph`/`pid`/`tid`, non-metadata events carry a
//! numeric `ts`, and the `s`/`f` flow events that draw the causal arcs
//! pair up one-to-one on their shared `id`.

use cx_core::{DesCluster, Experiment, FlightRecorder, ObsSink, Protocol, Workload};
use serde::Json;
use std::collections::HashMap;

fn home2(protocol: Protocol) -> Experiment {
    Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(protocol)
        .seed(42)
}

fn obj(v: &Json) -> &[(String, Json)] {
    match v {
        Json::Object(fields) => fields,
        other => panic!("expected object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Json, name: &str) -> Option<&'a Json> {
    obj(v).iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn str_field<'a>(v: &'a Json, name: &str) -> &'a str {
    match field(v, name) {
        Some(Json::Str(s)) => s,
        other => panic!("field {name}: expected string, got {other:?}"),
    }
}

fn is_number(v: &Json) -> bool {
    matches!(v, Json::U64(_) | Json::I64(_) | Json::F64(_))
}

/// Walk one exported trace document and validate every event, returning
/// the multiset of flow-event ids seen per phase (`s` and `f`).
fn check_trace(text: &str) -> (HashMap<String, u64>, HashMap<String, u64>) {
    let doc = serde_json::parse_value(text).expect("trace JSON parses");
    let events = match field(&doc, "traceEvents") {
        Some(Json::Array(evs)) => evs,
        other => panic!("traceEvents: expected array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace must not be empty");

    let (mut starts, mut finishes) = (HashMap::new(), HashMap::new());
    for ev in events {
        let ph = str_field(ev, "ph");
        assert!(
            ["M", "X", "C", "i", "s", "f"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        assert!(
            field(ev, "pid").map(is_number).unwrap_or(false),
            "every event needs a numeric pid: {ev:?}"
        );
        assert!(
            field(ev, "tid").map(is_number).unwrap_or(false),
            "every event needs a numeric tid: {ev:?}"
        );
        if ph != "M" {
            assert!(
                field(ev, "ts").map(is_number).unwrap_or(false),
                "non-metadata events need a numeric ts: {ev:?}"
            );
        }
        if ph == "X" {
            assert!(
                field(ev, "dur").map(is_number).unwrap_or(false),
                "complete events need a duration: {ev:?}"
            );
        }
        if ph == "s" || ph == "f" {
            let id = match field(ev, "id") {
                Some(Json::Str(s)) => s.clone(),
                Some(Json::U64(n)) => n.to_string(),
                other => panic!("flow event without usable id: {other:?}"),
            };
            let bucket = if ph == "s" {
                &mut starts
            } else {
                &mut finishes
            };
            *bucket.entry(id).or_insert(0u64) += 1;
        }
    }
    (starts, finishes)
}

fn assert_flows_pair(starts: &HashMap<String, u64>, finishes: &HashMap<String, u64>) {
    assert!(!starts.is_empty(), "a Cx run must produce flow arcs");
    assert_eq!(
        starts, finishes,
        "every flow start needs exactly one matching finish (and vice versa)"
    );
    for (id, n) in starts {
        assert_eq!(*n, 1, "flow id {id} reused {n} times");
    }
}

/// The recorded-run exporter: spans, counters, and causal message arcs,
/// all schema-valid, with every flow pair closed.
#[test]
fn obs_report_chrome_trace_is_schema_valid() {
    let sink = ObsSink::recording("cx");
    let r = home2(Protocol::Cx).run_obs(sink.clone());
    assert!(r.is_consistent());
    let report = sink.report().expect("recording sink yields a report");
    assert!(
        !report.edges.is_empty(),
        "a Cx replay sends cross-server messages"
    );
    let (starts, finishes) = check_trace(&report.to_chrome_trace());
    assert_flows_pair(&starts, &finishes);
}

/// The flight recorder's post-mortem exporter obeys the same schema; its
/// retained window also pairs every flow arc it kept.
#[test]
fn flight_recorder_chrome_trace_is_schema_valid() {
    let e = home2(Protocol::Cx);
    let flight = FlightRecorder::default();
    let st = e.workload.stream(&e.cfg);
    let (_, violations) = DesCluster::new_stream(e.cfg.clone(), st)
        .with_obs(ObsSink::Off)
        .with_flight(flight.clone())
        .run();
    assert!(violations.is_empty());
    assert!(flight.total() > 0);
    let (starts, finishes) = check_trace(&flight.to_chrome_trace());
    assert_flows_pair(&starts, &finishes);
    // The JSONL side of the post-mortem is one parseable object per line.
    let jsonl = flight.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        serde_json::parse_value(line).expect("each flight JSONL line parses");
    }
}
