//! Sensitivity shapes (§IV-D): the directions of Figures 7 and 9 must
//! hold at reduced scale.

use cx_core::{BatchTrigger, Experiment, Protocol, Workload, DUR_MS, DUR_SEC};

fn home2(scale: f64) -> Workload {
    Workload::trace("home2").scale(scale)
}

/// Figure 7(a): a larger log upper-limit improves Cx (a small log forces
/// commitments and blocks arrivals on pruning).
#[test]
fn figure7a_larger_log_is_faster() {
    let run = |limit: Option<u64>| {
        let r = Experiment::new(home2(0.004))
            .servers(8)
            .protocol(Protocol::Cx)
            .log_limit(limit)
            .run();
        assert!(r.is_consistent());
        (r.stats.replay_secs(), r.stats.server_stats.log_full_blocks)
    };
    let (tiny_time, tiny_blocks) = run(Some(24 << 10));
    let (big_time, big_blocks) = run(Some(4 << 20));
    assert!(tiny_blocks > 0, "a 24 KB log must fill during the replay");
    assert_eq!(big_blocks, 0, "a 4 MB log never fills at this scale");
    assert!(
        tiny_time > big_time,
        "small log {tiny_time:.3}s must be slower than large log {big_time:.3}s"
    );
}

/// Figure 7(b): valid records accumulate during the replay and are pruned
/// by commitments; the peak is bounded by the log limit.
#[test]
fn figure7b_valid_records_rise_and_fall() {
    let r = Experiment::new(home2(0.006))
        .servers(8)
        .protocol(Protocol::Cx)
        .log_limit(None)
        .trigger(BatchTrigger::Timeout {
            period_ns: 100 * DUR_MS,
        })
        .run();
    assert!(r.is_consistent());
    assert!(r.stats.peak_valid_bytes > 0);
    // after the drain everything is pruned (the timeline's fall)
    let last = r.stats.timeline.last().expect("sampled");
    assert!(
        last.max_bytes <= r.stats.peak_valid_bytes,
        "valid records must not grow past the peak"
    );
}

/// Figure 9(a): a larger timeout value improves the replay (more batched
/// commitments), approaching the optimum where no lazy commitment fires
/// during the replay at all.
#[test]
fn figure9a_larger_timeout_is_faster() {
    let run = |period_ns| {
        let r = Experiment::new(home2(0.004))
            .servers(8)
            .protocol(Protocol::Cx)
            .log_limit(None)
            .trigger(BatchTrigger::Timeout { period_ns })
            .run();
        assert!(r.is_consistent());
        r.stats.replay_secs()
    };
    let short = run(20 * DUR_MS);
    let long = run(256 * DUR_SEC); // never fires within the replay
    assert!(
        long <= short,
        "long timeout {long:.3}s must not be slower than short {short:.3}s"
    );
}

/// Figure 9(b): a larger threshold batches more commitments.
#[test]
fn figure9b_larger_threshold_batches_more() {
    let run = |pending_ops| {
        let r = Experiment::new(home2(0.004))
            .servers(8)
            .protocol(Protocol::Cx)
            .log_limit(None)
            .trigger(BatchTrigger::Threshold { pending_ops })
            .run();
        assert!(r.is_consistent());
        (r.stats.replay_secs(), r.stats.server_stats.lazy_batches)
    };
    let (small_t, small_batches) = run(4);
    let (large_t, large_batches) = run(512);
    assert!(
        small_batches > large_batches,
        "a low threshold fires more batches ({small_batches} vs {large_batches})"
    );
    assert!(
        large_t <= small_t,
        "fewer, larger batches must not be slower ({large_t:.3} vs {small_t:.3})"
    );
}

/// The idle trigger (the paper's future-work extension) commits lazily
/// and stays consistent.
#[test]
fn idle_trigger_extension_works() {
    let r = Experiment::new(home2(0.003))
        .servers(8)
        .protocol(Protocol::Cx)
        .log_limit(None)
        .trigger(BatchTrigger::Idle {
            idle_ns: 5 * DUR_MS,
            fallback_ns: DUR_SEC,
        })
        .run();
    assert!(r.is_consistent());
    assert_eq!(r.stats.ops_stuck, 0);
    assert!(
        r.stats.server_stats.lazy_batches > 0,
        "idle periods must trigger lazy commitments"
    );
}

/// Failure injection produces disagreements that resolve via L-COM and
/// ALL-NO without breaking consistency.
#[test]
fn injected_subop_failures_abort_atomically() {
    let r = Experiment::new(home2(0.003))
        .servers(8)
        .protocol(Protocol::Cx)
        .configure(|cfg| cfg.failure.subop_fail_prob = 0.05)
        .run();
    assert!(r.is_consistent(), "aborts must leave no partial state");
    assert!(r.stats.ops_failed > 0, "injected failures must surface");
    assert!(
        r.stats
            .msgs
            .get(&cx_core::MsgKind::AllNo)
            .copied()
            .unwrap_or(0)
            > 0,
        "disagreements must resolve through ALL-NO"
    );
}

/// The log-in-database ablation mode (§IV-A's rejected alternative) is
/// functionally equivalent — only slower.
#[test]
fn log_in_database_mode_is_consistent_and_slower() {
    let run = |in_db: bool| {
        let r = Experiment::new(home2(0.003))
            .servers(8)
            .protocol(Protocol::Cx)
            .configure(|cfg| cfg.cx.log_in_database = in_db)
            .run();
        assert!(r.is_consistent(), "in_db={in_db}");
        assert_eq!(r.stats.ops_stuck, 0);
        r.stats
    };
    let file = run(false);
    let bdb = run(true);
    // timing differs between the modes, so a handful of racy shared reads
    // may resolve differently; the namespace must match exactly
    let diff = (file.ops_applied as i64 - bdb.ops_applied as i64).abs();
    assert!(diff <= 8, "outcomes drifted by {diff} (racy reads only)");
    assert_eq!(file.final_inodes, bdb.final_inodes, "same namespace");
    assert_eq!(file.final_dentries, bdb.final_dentries, "same namespace");
    assert!(
        bdb.replay > file.replay,
        "database-resident log records must cost replay time ({} vs {})",
        bdb.replay,
        file.replay
    );
}
