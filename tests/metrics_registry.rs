//! The metric registry's three contracts, end to end.
//!
//! 1. **Cross-checked series**: the Cx-specific counters published into
//!    the registry equal the `RunStats`/`ServerStats` totals the paper's
//!    tables are built from, and both expositions (Prometheus text,
//!    JSON snapshot) carry them.
//! 2. **Zero interference**: installing the registry and the flight
//!    recorder changes nothing — the golden home2 digest is identical
//!    with and without them.
//! 3. **Concurrent exactness**: the threaded runtime's client threads
//!    bump the shared atomics concurrently, and the totals still match
//!    the deterministic DES run of the same workload.

use cx_core::{
    DesCluster, Experiment, FlightRecorder, LiveMetrics, MetricRegistry, ObsSink, Protocol,
    ThreadedCluster, Workload,
};

const GOLDEN_HOME2_DIGEST: u64 = 4_199_832_947_163_537_151;

fn home2(protocol: Protocol) -> Experiment {
    Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(protocol)
        .seed(42)
}

/// The Cx series land in the registry and cross-check against the
/// aggregated `ServerStats`: every commitment-round metric pairs 1:1
/// with the counter the engines already kept, and the batch-size
/// histogram saw exactly one sample per round.
#[test]
fn registry_series_cross_check_run_stats() {
    let r = home2(Protocol::Cx).run();
    assert!(r.is_consistent());
    let stats = &r.stats;
    let proto = &stats.proto;
    let srv = &stats.server_stats;

    assert_eq!(proto.immediate_commitments, srv.immediate_commitments);
    assert_eq!(proto.batched_commitments, srv.lazy_batches);
    assert_eq!(proto.aborts, srv.ops_aborted);
    assert_eq!(proto.conflicts_disordered, srv.invalidations);
    assert!(proto.conflicts_ordered > 0, "home2 must hit conflicts");
    assert!(
        proto.conflicts_ordered <= srv.conflicts,
        "ordered conflicts are a subset of all detected conflicts"
    );
    assert_eq!(
        proto.batch_size.count,
        proto.immediate_commitments + proto.batched_commitments,
        "one batch-size sample per commitment round"
    );
    assert_eq!(proto.batch_age_ns.count, proto.batch_size.count);
    assert!(proto.batched_ops > 0, "lazy rounds carry ops on home2");

    let reg = MetricRegistry::new();
    stats.publish(&reg);
    let snap = reg.snapshot();
    for (name, want) in [
        ("cx_ops_issued_total", stats.ops_total),
        ("cx_ops_applied_total", stats.ops_applied),
        ("cx_ops_failed_total", stats.ops_failed),
        ("cx_cross_ops_total", stats.cross_ops),
        ("cx_messages_total", stats.total_msgs()),
        ("cx_conflicts_ordered_total", proto.conflicts_ordered),
        ("cx_conflicts_disordered_total", proto.conflicts_disordered),
        ("cx_hint_resolved_total", proto.hint_resolved),
        (
            "cx_immediate_commitments_total",
            proto.immediate_commitments,
        ),
        ("cx_batched_commitments_total", proto.batched_commitments),
        ("cx_batched_ops_total", proto.batched_ops),
        ("cx_aborts_total", proto.aborts),
        ("cx_wal_truncations_total", proto.wal_truncations),
    ] {
        assert_eq!(snap.value(name), Some(want), "{name}");
    }

    // Both expositions carry the series: Prometheus text line-per-sample…
    let prom = snap.to_prometheus_text();
    assert!(prom.contains(&format!("cx_ops_issued_total {}", stats.ops_total)));
    assert!(prom.contains(&format!("cx_cross_ops_total {}", stats.cross_ops)));
    assert!(prom.contains("# TYPE cx_immediate_commitments_total counter"));
    assert!(prom.contains("cx_commitment_batch_size{quantile=\"0.5\"}"));
    assert!(prom.contains("cx_client_latency_ns_count"));
    // …and the JSON snapshot round-trips value-identically.
    let back = cx_core::MetricsSnapshot::from_json(&snap.to_json()).expect("snapshot parses");
    assert_eq!(back.value("cx_ops_issued_total"), Some(stats.ops_total));
    assert_eq!(back.value("cx_batched_ops_total"), Some(proto.batched_ops));
    assert!(!back.render_top().is_empty());
}

/// Both conflict denominators are reported: the paper's Table II ratio
/// over all ops (<4%) and the cross-ops-only ratio, which is strictly
/// larger whenever local ops exist.
#[test]
fn conflict_ratios_use_both_denominators() {
    let r = home2(Protocol::Cx).run();
    let all = r.stats.conflict_ratio();
    let cross = r.stats.cross_conflict_ratio();
    assert!(
        all > 0.0 && all < 0.04,
        "Table II: <4% over all ops, got {all}"
    );
    assert!(
        cross > all,
        "cross-ops denominator is smaller, so the ratio must be larger: {cross} vs {all}"
    );
    assert!(cross < 1.0);
}

/// Installing the introspection plane must not move the golden digest:
/// flight recorder attached, registry published after the run.
#[test]
fn flight_recorder_and_registry_leave_golden_digest_alone() {
    let e = home2(Protocol::Cx);
    let flight = FlightRecorder::default();
    let st = e.workload.stream(&e.cfg);
    let (stats, violations) = DesCluster::new_stream(e.cfg.clone(), st)
        .with_obs(ObsSink::Off)
        .with_flight(flight.clone())
        .run();
    assert!(violations.is_empty());
    assert_eq!(
        stats.digest(),
        GOLDEN_HOME2_DIGEST,
        "flight recorder perturbed the replay"
    );
    assert!(flight.total() > 0, "the ring observed the run");
    let reg = MetricRegistry::new();
    stats.publish(&reg);
    assert_eq!(
        stats.digest(),
        GOLDEN_HOME2_DIGEST,
        "publishing into the registry must not touch the stats digest"
    );
}

/// Concurrent increments from the threaded runtime's client threads
/// merge to the same totals as the deterministic DES run of the same
/// workload (ops and cross-ops counts are placement-determined, so they
/// must agree exactly; the applied/failed split must sum to issued).
#[test]
fn threaded_registry_totals_match_des() {
    let e = home2(Protocol::Cx);
    let des = e.run();
    assert!(des.is_consistent());

    let live = LiveMetrics::new(MetricRegistry::new());
    let registry = live.registry.clone();
    let st = e.workload.stream(&e.cfg);
    let res = ThreadedCluster::run_stream_live(e.cfg.clone(), st, ObsSink::Off, live);
    assert!(res.violations.is_empty(), "threaded run inconsistent");

    let snap = registry.snapshot();
    let v = |name: &str| snap.value(name).unwrap_or(0);
    assert_eq!(v("cx_ops_issued_total"), des.stats.ops_total);
    assert_eq!(v("cx_cross_ops_total"), des.stats.cross_ops);
    assert_eq!(
        v("cx_ops_applied_total") + v("cx_ops_failed_total"),
        v("cx_ops_issued_total")
    );
    // The engines' protocol series were folded in at stop: the threaded
    // run launches commitment rounds too, and each round left exactly
    // one batch-size sample.
    assert_eq!(
        v("cx_immediate_commitments_total") + v("cx_batched_commitments_total"),
        snap.series
            .iter()
            .find(|s| s.name == "cx_commitment_batch_size")
            .expect("batch-size series present")
            .summary
            .count
    );
    // Client latencies were recorded live, one per issued op.
    assert_eq!(
        snap.series
            .iter()
            .find(|s| s.name == "cx_client_latency_ns")
            .expect("client-latency series present")
            .summary
            .count,
        des.stats.ops_total
    );
}
