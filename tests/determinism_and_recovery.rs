//! Reproducibility and crash-recovery, end to end.

use cx_core::{Experiment, Protocol, RecoveryExperiment, Workload};

/// The whole pipeline is deterministic: identical configuration →
/// identical statistics, across protocols.
#[test]
fn identical_runs_are_bit_identical() {
    for protocol in [Protocol::Cx, Protocol::Se, Protocol::TwoPc] {
        let make = || {
            Experiment::new(Workload::trace("alegra").scale(0.002).seed(11))
                .servers(8)
                .protocol(protocol)
                .seed(42)
                .run()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.stats.replay, b.stats.replay, "{protocol:?}");
        assert_eq!(a.stats.msgs, b.stats.msgs, "{protocol:?}");
        assert_eq!(a.stats.events, b.stats.events, "{protocol:?}");
        assert_eq!(a.stats.server_stats, b.stats.server_stats, "{protocol:?}");
        assert_eq!(a.stats.disk, b.stats.disk, "{protocol:?}");
    }
}

/// A different workload seed produces a genuinely different run.
#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        Experiment::new(Workload::trace("alegra").scale(0.002).seed(seed))
            .servers(8)
            .run()
            .stats
            .replay
    };
    assert_ne!(run(1), run(2));
}

/// Table V end-to-end: recovery completes after a mid-run crash, the time
/// grows with the valid-record volume, but sublinearly (batched
/// resumption).
#[test]
fn recovery_time_is_sublinear_in_valid_records() {
    let exp = |kb: u64| {
        RecoveryExperiment {
            servers: 8,
            trace_scale: 0.02,
            detection_ms: 200,
            reboot_ms: 100,
            ..Default::default()
        }
        .with_target(kb << 10)
    };
    let small = exp(10).run().expect("10 KB accumulates");
    let large = exp(160).run().expect("160 KB accumulates");
    assert!(large.valid_kb_at_crash >= 16 * small.valid_kb_at_crash / 2);
    assert!(
        large.protocol_secs > small.protocol_secs,
        "more half-completed work takes longer"
    );
    assert!(
        large.recovery_secs < small.recovery_secs * 16.0,
        "16x the records must cost far less than 16x the total time \
         ({:.3}s vs {:.3}s)",
        large.recovery_secs,
        small.recovery_secs
    );
}

/// The threaded runtime reaches the same final state as the simulator for
/// the same sequential workload.
#[test]
fn threaded_and_des_agree() {
    let workload = Workload::trace("CTH").scale(0.0008);
    let des = Experiment::new(workload.clone())
        .servers(4)
        .protocol(Protocol::Cx)
        .configure(|cfg| {
            cfg.cx.trigger = cx_core::BatchTrigger::Timeout {
                period_ns: 5_000_000,
            }
        })
        .run();
    let thr = Experiment::new(workload)
        .servers(4)
        .protocol(Protocol::Cx)
        .configure(|cfg| {
            cfg.cx.trigger = cx_core::BatchTrigger::Timeout {
                period_ns: 5_000_000,
            }
        })
        .run_threaded();
    assert!(des.is_consistent() && thr.is_consistent());
    assert_eq!(des.stats.ops_total, thr.stats.ops_total);
    assert_eq!(des.stats.ops_applied, thr.stats.ops_applied);
    assert_eq!(des.stats.ops_failed, thr.stats.ops_failed);
}
