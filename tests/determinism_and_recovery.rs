//! Reproducibility and crash-recovery, end to end.

use cx_core::{Experiment, Protocol, RecoveryExperiment, Workload};

/// The whole pipeline is deterministic: identical configuration →
/// identical statistics, across protocols.
#[test]
fn identical_runs_are_bit_identical() {
    for protocol in [Protocol::Cx, Protocol::Se, Protocol::TwoPc] {
        let make = || {
            Experiment::new(Workload::trace("alegra").scale(0.002).seed(11))
                .servers(8)
                .protocol(protocol)
                .seed(42)
                .run()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.stats.replay, b.stats.replay, "{protocol:?}");
        assert_eq!(a.stats.msgs, b.stats.msgs, "{protocol:?}");
        assert_eq!(a.stats.events, b.stats.events, "{protocol:?}");
        assert_eq!(a.stats.server_stats, b.stats.server_stats, "{protocol:?}");
        assert_eq!(a.stats.disk, b.stats.disk, "{protocol:?}");
    }
}

/// The two workload intakes — a materialized `Trace` handed to the
/// cluster up front vs the pull-based stream the clients drain on demand
/// — must replay to byte-identical digests, for every Table II profile
/// and for Metarates. This is the contract that lets `--full` runs
/// stream (constant memory) without changing a single result.
#[test]
fn streamed_and_materialized_intakes_replay_identically() {
    use cx_core::MetaratesMix;
    let mut workloads: Vec<(String, Workload)> =
        ["CTH", "s3d", "alegra", "home2", "deasna2", "lair62b"]
            .into_iter()
            .map(|name| {
                (
                    name.to_string(),
                    Workload::trace(name).scale(0.002).seed(11),
                )
            })
            .collect();
    workloads.push((
        "metarates".into(),
        Workload::metarates(MetaratesMix::UpdateDominated),
    ));
    for (name, w) in workloads {
        let e = Experiment::new(w)
            .servers(8)
            .protocol(Protocol::Cx)
            .seed(42);
        let streamed = e.run();
        let trace = e.workload.build(&e.cfg);
        let (mat_stats, mat_violations) = cx_core::run_trace(e.cfg.clone(), &trace);
        assert!(mat_violations.is_empty(), "{name}: materialized run dirty");
        assert!(streamed.is_consistent(), "{name}: streamed run dirty");
        assert_eq!(
            streamed.stats.digest(),
            mat_stats.digest(),
            "{name}: intake paths diverged"
        );
    }
}

/// A different workload seed produces a genuinely different run.
#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        Experiment::new(Workload::trace("alegra").scale(0.002).seed(seed))
            .servers(8)
            .run()
            .stats
            .replay
    };
    assert_ne!(run(1), run(2));
}

/// Table V end-to-end: recovery completes after a mid-run crash, the time
/// grows with the valid-record volume, but sublinearly (batched
/// resumption).
#[test]
fn recovery_time_is_sublinear_in_valid_records() {
    let exp = |kb: u64| {
        RecoveryExperiment {
            servers: 8,
            trace_scale: 0.02,
            detection_ms: 200,
            reboot_ms: 100,
            ..Default::default()
        }
        .with_target(kb << 10)
    };
    let small = exp(10).run().expect("10 KB accumulates");
    let large = exp(160).run().expect("160 KB accumulates");
    assert!(large.valid_kb_at_crash >= 16 * small.valid_kb_at_crash / 2);
    assert!(
        large.protocol_secs > small.protocol_secs,
        "more half-completed work takes longer"
    );
    assert!(
        large.recovery_secs < small.recovery_secs * 16.0,
        "16x the records must cost far less than 16x the total time \
         ({:.3}s vs {:.3}s)",
        large.recovery_secs,
        small.recovery_secs
    );
}

/// The threaded runtime reaches the same final state as the simulator for
/// the same sequential workload.
#[test]
fn threaded_and_des_agree() {
    let workload = Workload::trace("CTH").scale(0.0008);
    let des = Experiment::new(workload.clone())
        .servers(4)
        .protocol(Protocol::Cx)
        .configure(|cfg| {
            cfg.cx.trigger = cx_core::BatchTrigger::Timeout {
                period_ns: 5_000_000,
            }
        })
        .run();
    let thr = Experiment::new(workload)
        .servers(4)
        .protocol(Protocol::Cx)
        .configure(|cfg| {
            cfg.cx.trigger = cx_core::BatchTrigger::Timeout {
                period_ns: 5_000_000,
            }
        })
        .run_threaded();
    assert!(des.is_consistent() && thr.is_consistent());
    assert_eq!(des.stats.ops_total, thr.stats.ops_total);
    // The threaded runtime batches on *wall-clock* timers, so which ops land
    // in which lazy-commitment batch — and therefore which concurrent ops
    // conflict and abort — races with real thread scheduling. Exact
    // applied/failed equality with the virtual-time simulator is not a
    // guaranteed invariant; near-agreement is.
    assert_eq!(
        thr.stats.ops_applied + thr.stats.ops_failed,
        thr.stats.ops_total
    );
    let diff = des.stats.ops_applied.abs_diff(thr.stats.ops_applied);
    assert!(
        diff <= des.stats.ops_total / 50,
        "threaded applied {} vs DES {} — divergence beyond scheduling noise",
        thr.stats.ops_applied,
        des.stats.ops_applied
    );
}

/// The shared reproducibility fingerprint (also used by the chaos replay
/// checks, so this test pins the same digest a repro file pins).
fn stats_digest(r: &cx_core::ExperimentResult) -> u64 {
    r.stats.digest()
}

/// Perf-pass regression guard: the home2 replay must stay bit-identical
/// run to run, identical under both event-queue backends (timing wheel vs
/// the reference binary heap selected by `CX_SIM_QUEUE=heap`), and
/// identical to the digest pinned when the optimization pass landed. A
/// digest change means simulator *behavior* changed — intended changes
/// must re-pin the golden value.
#[test]
fn home2_digest_pins_simulator_behavior() {
    let run = || {
        Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
            .servers(8)
            .protocol(Protocol::Cx)
            .seed(42)
            .run()
    };
    let a = run();
    let b = run();
    assert!(a.is_consistent());
    assert_eq!(
        stats_digest(&a),
        stats_digest(&b),
        "same-process replay must be exact"
    );

    // Reference-backend equivalence. Setting the env var mid-process is
    // benign for concurrently starting runs: both backends produce
    // identical event orderings by construction.
    std::env::set_var("CX_SIM_QUEUE", "heap");
    let c = run();
    std::env::remove_var("CX_SIM_QUEUE");
    assert_eq!(
        stats_digest(&a),
        stats_digest(&c),
        "timing-wheel and heap backends must replay identically"
    );

    // Third leg of the cross-check: the partitioned entry point at
    // `parts == 1` is contractually the plain single-threaded simulator.
    let d = Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(Protocol::Cx)
        .seed(42)
        .run_partitioned(1);
    assert_eq!(
        stats_digest(&a),
        stats_digest(&d),
        "--partitions 1 must be bit-identical to the single-threaded run"
    );

    assert_eq!(stats_digest(&a), GOLDEN_HOME2_DIGEST);
}

/// The parallel kernel's determinism and equivalence contract
/// (DESIGN.md §8). For a fixed (seed, N) a partitioned run is bit-for-bit
/// reproducible; across partition counts every tie-insensitive total is
/// exactly equal to the single-threaded run, conflict-adjacent counters
/// stay within a tight band (same-tick arrival ties flip a handful of
/// conflict detections — the same reason the threaded runtime is
/// tolerance-checked), and the latency histograms remain statistically
/// indistinguishable.
#[test]
fn partitioned_runs_are_deterministic_and_total_preserving() {
    let e = Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(Protocol::Cx)
        .seed(42);
    let single = e.run();

    for parts in [2u32, 4] {
        let a = e.run_partitioned(parts);
        let b = e.run_partitioned(parts);
        assert_eq!(
            stats_digest(&a),
            stats_digest(&b),
            "p{parts}: fixed-(seed, N) repeat runs must be bit-identical"
        );
        assert!(a.is_consistent(), "p{parts}: namespace check dirty");

        // Tie-insensitive totals: exact.
        let (s, p) = (&single.stats, &a.stats);
        assert_eq!(s.ops_total, p.ops_total, "p{parts}: ops_total");
        assert_eq!(
            p.ops_applied + p.ops_failed,
            p.ops_total,
            "p{parts}: op accounting must close"
        );
        assert_eq!(s.cross_ops, p.cross_ops, "p{parts}: cross_ops");
        assert_eq!(
            s.server_stats.subops_executed, p.server_stats.subops_executed,
            "p{parts}: sub-ops executed"
        );
        assert_eq!(
            s.server_stats.reads_served, p.server_stats.reads_served,
            "p{parts}: reads served"
        );
        assert_eq!(
            s.server_stats.ops_committed, p.server_stats.ops_committed,
            "p{parts}: ops committed"
        );
        assert_eq!(
            s.server_stats.local_mutations, p.server_stats.local_mutations,
            "p{parts}: local mutations"
        );
        assert_eq!(
            s.proto.batch_size.sum, p.proto.batch_size.sum,
            "p{parts}: total batched-commitment coverage"
        );
        assert_eq!(
            s.final_inodes + s.final_dentries,
            p.final_inodes + p.final_dentries,
            "p{parts}: final namespace size"
        );

        // Conflict-adjacent counters: tie-sensitive, tight band.
        let conflict_drift = s.server_stats.conflicts.abs_diff(p.server_stats.conflicts);
        assert!(
            conflict_drift <= 1 + s.server_stats.conflicts / 20,
            "p{parts}: conflicts drifted beyond tie noise ({} vs {})",
            p.server_stats.conflicts,
            s.server_stats.conflicts
        );
        assert!(
            s.ops_applied.abs_diff(p.ops_applied) <= 1 + s.server_stats.conflicts / 20,
            "p{parts}: applied-op drift beyond tie noise"
        );

        // Latency histograms: same sample count, statistically identical
        // distribution (means within 1%, maxima within 2x — the replay
        // timing model is unchanged, only same-tick orderings move).
        assert_eq!(s.latency.count, p.latency.count, "p{parts}: latency count");
        assert_eq!(
            s.cross_latency.count, p.cross_latency.count,
            "p{parts}: cross-latency count"
        );
        let mean = |l: &cx_core::LatencyStat| l.sum_ns as f64 / l.count.max(1) as f64;
        let (ms, mp) = (mean(&s.latency), mean(&p.latency));
        assert!(
            (ms - mp).abs() / ms < 0.01,
            "p{parts}: mean client latency drifted {ms:.0} -> {mp:.0}"
        );
        let (cs, cp) = (mean(&s.cross_latency), mean(&p.cross_latency));
        assert!(
            (cs - cp).abs() / cs < 0.01,
            "p{parts}: mean cross-op latency drifted {cs:.0} -> {cp:.0}"
        );
        assert!(
            p.latency.max_ns <= 2 * s.latency.max_ns && s.latency.max_ns <= 2 * p.latency.max_ns,
            "p{parts}: latency tail moved beyond tie noise"
        );
    }
}

/// Pinned by running the home2 replay above at the end of the perf pass.
const GOLDEN_HOME2_DIGEST: u64 = 4_199_832_947_163_537_151;
