//! The observability plane's two load-bearing contracts, end to end.
//!
//! 1. **Zero interference**: a recording sink must not change a single
//!    simulator decision — the obs-on and obs-off replays of the same
//!    configuration produce identical digests (the golden home2 pin
//!    among them).
//! 2. **Span completeness**: every operation the replay applied closed
//!    its lifecycle — phases stamped in order, the commitment phases
//!    present for Cx cross ops, and per-phase segments summing to the
//!    client-visible latency.

use cx_core::{Experiment, ObsSink, Phase, Protocol, Workload};

fn home2(protocol: Protocol) -> Experiment {
    Experiment::new(Workload::trace("home2").scale(0.005).seed(7))
        .servers(8)
        .protocol(protocol)
        .seed(42)
}

/// Golden-digest equivalence: `--obs` on/off replay to the same digest
/// for every protocol, and the Cx digest is the pinned golden one.
#[test]
fn obs_on_off_digests_are_identical() {
    const GOLDEN_HOME2_DIGEST: u64 = 4_199_832_947_163_537_151;
    for protocol in [
        Protocol::Cx,
        Protocol::Se,
        Protocol::SeBatched,
        Protocol::TwoPc,
    ] {
        let off = home2(protocol).run();
        let sink = ObsSink::recording(format!("{protocol:?}"));
        let on = home2(protocol).run_obs(sink.clone());
        assert!(off.is_consistent() && on.is_consistent(), "{protocol:?}");
        assert_eq!(
            off.stats.digest(),
            on.stats.digest(),
            "{protocol:?}: recording perturbed the replay"
        );
        if protocol == Protocol::Cx {
            assert_eq!(off.stats.digest(), GOLDEN_HOME2_DIGEST);
        }
        // The sink did observe the run it rode along on.
        let report = sink.report().expect("recording sink yields a report");
        assert_eq!(report.ops_issued, on.stats.ops_total);
    }
}

/// Span-lifecycle completeness under Cx: every sampled op that the
/// cluster answered reached `Replied` with monotone phase stamps, every
/// applied cross op also closed the commitment path (`Completed`), and
/// phase accounting sums to the client-visible latency span by span.
#[test]
fn cx_spans_close_all_opened_phases() {
    let sink = ObsSink::recording("cx");
    let r = home2(Protocol::Cx).run_obs(sink.clone());
    assert!(r.is_consistent());
    assert_eq!(
        r.stats.ops_stuck, 0,
        "hung ops would legitimately leave open spans"
    );

    let report = sink.report().expect("report");
    report
        .validate()
        .expect("phase accounting sums to client latency");
    assert!(!report.spans.is_empty(), "sampled window must not be empty");

    let mut cross_completed = 0u64;
    for s in &report.spans {
        assert!(
            s.at(Phase::Replied).is_some(),
            "{:?} never answered the client",
            s.op
        );
        s.check_accounting()
            .unwrap_or_else(|e| panic!("{:?}: {e}", s.op));
        if s.cross && s.outcome.is_some() {
            assert!(
                s.at(Phase::Completed).is_some(),
                "{:?}: cross op left its commitment open (stuck at {:?})",
                s.op,
                s.last_phase()
            );
            cross_completed += 1;
        }
    }
    assert!(cross_completed > 0, "home2 must exercise cross-server ops");

    // The decoupling claim, measured: commitment latency exists for Cx
    // and is excluded from (not added to) the client-visible histogram.
    assert!(report.commitment.count > 0);
    assert_eq!(
        report.client_all.count,
        report.client_cross.count + report.client_local.count
    );

    // Nothing is left in flight after a drained run.
    assert!(sink.stuck_report().is_empty());
}

/// The threaded runtime carries the same sink: a recording run under
/// real concurrency stays consistent and the recorder observes every
/// issued op (wall-clock stamps jitter, so only counts are asserted).
#[test]
fn threaded_runtime_records_through_the_same_sink() {
    let e = home2(Protocol::Cx);
    let sink = ObsSink::recording("cx");
    let st = e.workload.stream(&e.cfg);
    let res = cx_cluster::ThreadedCluster::run_stream_obs(e.cfg.clone(), st, sink.clone());
    assert!(res.violations.is_empty(), "threaded run inconsistent");
    let report = sink.report().expect("report");
    assert_eq!(report.ops_issued, res.stats.ops_total);
    assert_eq!(report.client_all.count, res.stats.ops_total);
    assert_eq!(
        report.client_all.count,
        report.client_cross.count + report.client_local.count
    );
}

/// The commitment histogram stays empty for the protocols whose
/// commitment work sits *on* the client-visible path — the contrast the
/// paper draws (Cx is the only one that defers it past the reply).
#[test]
fn only_cx_records_post_reply_commitment() {
    for protocol in [Protocol::Se, Protocol::SeBatched, Protocol::TwoPc] {
        let sink = ObsSink::recording(format!("{protocol:?}"));
        let r = home2(protocol).run_obs(sink.clone());
        assert!(r.is_consistent());
        let report = sink.report().expect("report");
        assert_eq!(
            report.commitment.count, 0,
            "{protocol:?} commits before replying; nothing is post-reply"
        );
    }
}
