pub use cx_core::*;
